package wiera

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/coord"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
)

// cluster is a complete in-process Wiera deployment for tests: fabric,
// coordination service, Wiera server, and Tiera servers in the standard
// regions.
type cluster struct {
	clk    clock.Clock
	net    *simnet.Network
	fabric *transport.Fabric
	coord  *coord.Server
	server *Server
	tss    map[simnet.Region]*TieraServer
}

func newCluster(t *testing.T, regions ...simnet.Region) *cluster {
	return newClusterScaled(t, 2000, regions...)
}

// newClusterScaled lets timing-sensitive tests (threshold monitors) pick a
// smaller compression factor: real-world scheduling noise is multiplied by
// the factor, so monitors comparing clock durations need headroom.
func newClusterScaled(t *testing.T, factor float64, regions ...simnet.Region) *cluster {
	t.Helper()
	if len(regions) == 0 {
		regions = simnet.DefaultRegions()
	}
	clk := clock.NewScaled(factor) // factor 2000: 70ms WAN RTT -> 35us real
	net := simnet.New(clk)
	fabric := transport.NewFabric(net)
	cs := coord.NewServer(clk)
	zkEP, err := fabric.NewEndpoint("zk", simnet.USEast)
	if err != nil {
		t.Fatal(err)
	}
	zkEP.Serve(cs.Handler())
	srv, err := NewServer(ServerConfig{Fabric: fabric, CoordDst: "zk"})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{clk: clk, net: net, fabric: fabric, coord: cs, server: srv,
		tss: make(map[simnet.Region]*TieraServer)}
	for _, r := range regions {
		ts, err := NewTieraServer(fabric, r, srv, "zk")
		if err != nil {
			t.Fatal(err)
		}
		c.tss[r] = ts
	}
	t.Cleanup(func() {
		for _, ts := range c.tss {
			ts.Close()
		}
		srv.Close()
		fabric.Close()
	})
	return c
}

// start launches a Wiera instance from a builtin global policy.
func (c *cluster) start(t *testing.T, id, policyName string, params map[string]string) []PeerInfo {
	t.Helper()
	src, err := policy.BuiltinSource(policyName)
	if err != nil {
		t.Fatal(err)
	}
	return c.startSrc(t, id, src, params)
}

func (c *cluster) startSrc(t *testing.T, id, src string, params map[string]string) []PeerInfo {
	t.Helper()
	if params == nil {
		params = map[string]string{}
	}
	if _, ok := params["t"]; !ok {
		params["t"] = "500ms"
	}
	nodes, err := c.server.StartInstances(StartInstancesRequest{
		InstanceID: id, PolicySrc: src, Params: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

func (c *cluster) node(t *testing.T, name string) *Node {
	t.Helper()
	n := lookupNode(name)
	if n == nil {
		t.Fatalf("no node %q", name)
	}
	return n
}

func TestStartInstancesSpawnsDeclaredRegions(t *testing.T) {
	c := newCluster(t)
	nodes := c.start(t, "mp", "MultiPrimariesConsistency", nil)
	if len(nodes) != 3 {
		t.Fatalf("nodes = %v", nodes)
	}
	regions := map[simnet.Region]bool{}
	for _, n := range nodes {
		regions[n.Region] = true
	}
	if !regions[simnet.USWest] || !regions[simnet.USEast] || !regions[simnet.EUWest] {
		t.Fatalf("regions = %v", regions)
	}
	// Each node knows its peers.
	n := c.node(t, nodes[0].Name)
	if len(n.Peers()) != 2 {
		t.Fatalf("peers = %v", n.Peers())
	}
	// getInstances returns the same list.
	got, err := c.server.GetInstances("mp")
	if err != nil || len(got) != 3 {
		t.Fatalf("GetInstances = %v, %v", got, err)
	}
}

func TestStartInstancesErrors(t *testing.T) {
	c := newCluster(t)
	if _, err := c.server.StartInstances(StartInstancesRequest{PolicySrc: "x"}); err == nil {
		t.Fatal("missing id should fail")
	}
	if _, err := c.server.StartInstances(StartInstancesRequest{InstanceID: "a", PolicySrc: "not a policy"}); err == nil {
		t.Fatal("bad source should fail")
	}
	localSrc, _ := policy.BuiltinSource("LowLatencyInstance")
	if _, err := c.server.StartInstances(StartInstancesRequest{InstanceID: "a", PolicySrc: localSrc}); err == nil {
		t.Fatal("local policy should fail")
	}
	noRegions := "Wiera Empty { event(insert.into) : response { store(what: insert.object, to: local_instance); } }"
	if _, err := c.server.StartInstances(StartInstancesRequest{InstanceID: "a", PolicySrc: noRegions}); err == nil {
		t.Fatal("no regions should fail")
	}
	c.start(t, "dup", "EventualConsistency", nil)
	src, _ := policy.BuiltinSource("EventualConsistency")
	if _, err := c.server.StartInstances(StartInstancesRequest{InstanceID: "dup", PolicySrc: src, Params: map[string]string{"t": "1s"}}); err == nil {
		t.Fatal("duplicate id should fail")
	}
	if _, err := c.server.GetInstances("ghost"); err == nil {
		t.Fatal("unknown instance should fail")
	}
	if err := c.server.StopInstances("ghost"); err == nil {
		t.Fatal("stopping unknown instance should fail")
	}
}

func TestMultiPrimariesSynchronousReplication(t *testing.T) {
	c := newCluster(t)
	nodes := c.start(t, "mp", "MultiPrimariesConsistency", nil)
	west := c.node(t, nodes[0].Name)
	meta, err := west.Put(context.Background(), "k", []byte("v1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 1 {
		t.Fatalf("version = %d", meta.Version)
	}
	// Synchronous: every other node must already have the data.
	for _, pi := range nodes[1:] {
		n := c.node(t, pi.Name)
		data, m, err := n.Local().Get(context.Background(), "k")
		if err != nil || string(data) != "v1" {
			t.Fatalf("node %s: %q, %v", pi.Name, data, err)
		}
		if m.Version != 1 {
			t.Fatalf("node %s version = %d", pi.Name, m.Version)
		}
	}
	// Global lock released after the put (release is asynchronous).
	deadline := time.Now().Add(2 * time.Second)
	for c.coord.Holder("k") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("lock still held by %d", c.coord.Holder("k"))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPrimaryBackupForwarding(t *testing.T) {
	c := newCluster(t)
	nodes := c.start(t, "pb", "PrimaryBackupConsistency", nil)
	var primary, backup *Node
	for _, pi := range nodes {
		n := c.node(t, pi.Name)
		if n.IsPrimary() {
			primary = n
		} else {
			backup = n
		}
	}
	if primary == nil || backup == nil {
		t.Fatal("no primary/backup split")
	}
	// A put at the backup is forwarded to the primary, which stores and
	// fans out synchronously.
	meta, err := backup.Put(context.Background(), "k", []byte("v"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 1 {
		t.Fatalf("version = %d", meta.Version)
	}
	if _, _, err := primary.Local().Get(context.Background(), "k"); err != nil {
		t.Fatalf("primary missing data: %v", err)
	}
	if _, _, err := backup.Local().Get(context.Background(), "k"); err != nil {
		t.Fatalf("backup missing data after sync copy: %v", err)
	}
	if primary.Local().PutCount() == 0 {
		t.Fatal("primary local put count is zero")
	}
}

func TestEventualConsistencyQueueAndConvergence(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	src := `
Wiera EventualConsistency {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}
}`
	nodes := c.startSrc(t, "ev", src, nil)
	west := c.node(t, nodes[0].Name)
	east := c.node(t, nodes[1].Name)
	if _, err := west.Put(context.Background(), "k", []byte("from-west"), nil); err != nil {
		t.Fatal(err)
	}
	// Not yet replicated (queued).
	if _, _, err := east.Local().Get(context.Background(), "k"); err == nil {
		t.Log("replication already happened (flush raced); acceptable")
	}
	west.queue.flushNow()
	data, _, err := east.Local().Get(context.Background(), "k")
	if err != nil || string(data) != "from-west" {
		t.Fatalf("east after flush: %q, %v", data, err)
	}
	// Concurrent writes at both sides converge under LWW after flushes.
	if _, err := west.Put(context.Background(), "c", []byte("west"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := east.Put(context.Background(), "c", []byte("east"), nil); err != nil {
		t.Fatal(err)
	}
	west.queue.flushNow()
	east.queue.flushNow()
	west.queue.flushNow() // LWW redelivery is harmless
	dw, mw, err := west.Local().Get(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	de, me, err := east.Local().Get(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	if mw.Version != me.Version || string(dw) != string(de) {
		t.Fatalf("replicas diverge: %q(v%d) vs %q(v%d)", dw, mw.Version, de, me.Version)
	}
}

func TestQueueSupersedesOlderVersions(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	nodes := c.start(t, "ev", "EventualConsistency", nil)
	_ = nodes
	west := c.node(t, "ev/us-west")
	for i := 0; i < 5; i++ {
		if _, err := west.Put(context.Background(), "k", []byte{byte(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := west.queue.Len(); got != 1 {
		t.Fatalf("queue keys = %d, want 1 (superseded)", got)
	}
}

func TestClientClosestAndFailover(t *testing.T) {
	c := newCluster(t)
	c.start(t, "mp", "MultiPrimariesConsistency", nil)
	cli, err := NewClient(c.fabric, "client-1", simnet.EUWest, c.server.Name(), "mp")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	closest, err := cli.Closest()
	if err != nil || closest != "mp/eu-west" {
		t.Fatalf("closest = %q, %v", closest, err)
	}
	if _, err := cli.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	data, _, err := cli.Get(context.Background(), "k")
	if err != nil || string(data) != "v" {
		t.Fatalf("Get = %q, %v", data, err)
	}
	vs, err := cli.VersionList(context.Background(), "k")
	if err != nil || len(vs) != 1 {
		t.Fatalf("VersionList = %v, %v", vs, err)
	}
	if _, _, err := cli.GetVersion(context.Background(), "k", 1); err != nil {
		t.Fatal(err)
	}
	// Kill the closest node: the client fails over to the next one.
	c.node(t, "mp/eu-west").Crash()
	data, _, err = cli.Get(context.Background(), "k")
	if err != nil || string(data) != "v" {
		t.Fatalf("Get after crash = %q, %v", data, err)
	}
	if err := cli.RemoveVersion(context.Background(), "k", 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.Remove(context.Background(), "k"); err == nil {
		t.Log("remove after removeVersion cleaned key") // version was the only one
	}
}

func TestDynamicConsistencySwitch(t *testing.T) {
	c := newClusterScaled(t, 40)
	dyn, _ := policy.BuiltinSource("DynamicConsistency")
	nodes := c.start(t, "dc", "MultiPrimariesConsistency", map[string]string{"dynamic": dyn})
	west := c.node(t, nodes[0].Name)

	// Normal operation: stays on MultiPrimaries.
	for i := 0; i < 3; i++ {
		if _, err := west.Put(context.Background(), fmt.Sprintf("k%d", i), []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := c.server.CurrentPolicy("dc"); got != "MultiPrimariesConsistency" {
		t.Fatalf("policy = %q", got)
	}

	// Inject a large delay on the west-east path: puts from west now take
	// >800ms. Sustained for >30s (clock time) it must switch to eventual.
	c.net.InjectDelay(simnet.USWest, simnet.USEast, 2*time.Second)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := west.Put(context.Background(), "hot", []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
		if got, _ := c.server.CurrentPolicy("dc"); got == "EventualConsistency" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never switched to eventual consistency")
		}
	}
	if got := west.PolicyName(); got != "EventualConsistency" {
		t.Fatalf("west policy = %q", got)
	}

	// Clear the delay: after sustained fast puts it must switch back.
	c.net.ClearDelay(simnet.USWest, simnet.USEast)
	deadline = time.Now().Add(15 * time.Second)
	for {
		if _, err := west.Put(context.Background(), "hot", []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
		if got, _ := c.server.CurrentPolicy("dc"); got == "MultiPrimariesConsistency" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never switched back to multi-primaries")
		}
	}
}

func TestChangePrimaryOnForwardedMajority(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.EUWest, simnet.AsiaEast)
	dyn, _ := policy.BuiltinSource("ChangePrimary")
	// Primary starts in Asia East (as in the paper's Sec 5.2); EU West
	// then sends the bulk of the traffic.
	src := `
Wiera PrimaryBackupConsistency {
	Region1 = {name: LowLatencyInstance, region: asia-east, primary: true,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region3 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
			queue(what: insert.object, to: all_regions);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}
}`
	// Use a short period threshold so the test converges quickly.
	shortDyn := strings.Replace(dyn, "600s", "2s", 1)
	c.startSrc(t, "cp", src, map[string]string{"dynamic": shortDyn})
	if p, _ := c.server.CurrentPrimary("cp"); p != "cp/asia-east" {
		t.Fatalf("initial primary = %q", p)
	}
	eu := c.node(t, "cp/eu-west")
	deadline := time.Now().Add(20 * time.Second)
	for i := 0; ; i++ {
		if _, err := eu.Put(context.Background(), fmt.Sprintf("k%d", i%8), []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
		if p, _ := c.server.CurrentPrimary("cp"); p == "cp/eu-west" {
			break
		}
		if time.Now().After(deadline) {
			p, _ := c.server.CurrentPrimary("cp")
			t.Fatalf("primary never moved to eu-west (still %q)", p)
		}
	}
	// New primary serves local puts without forwarding.
	if !eu.IsPrimary() {
		t.Fatal("eu node does not consider itself primary")
	}
}

func TestHeartbeatRespawnsFailedReplica(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	nodes := c.start(t, "ha", "EventualConsistency", nil)
	if len(nodes) != 1 {
		// EventualConsistency builtin declares one region; use a two-region
		// source instead.
		t.Fatalf("unexpected node count %d", len(nodes))
	}
	c.server.StopInstances("ha")

	src := `
Wiera TwoRegions {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		copy(what: insert.object, to: all_regions);
	}
}`
	nodes = c.startSrc(t, "ha2", src, nil)
	west := c.node(t, "ha2/us-west")
	if _, err := west.Put(context.Background(), "k", []byte("precious"), nil); err != nil {
		t.Fatal(err)
	}
	// Kill the east replica and run a heartbeat sweep.
	c.node(t, "ha2/us-east").Crash()
	c.server.HeartbeatOnce()
	got, err := c.server.GetInstances("ha2")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("membership after respawn = %v", got)
	}
	var respawned string
	for _, n := range got {
		if n.Region == simnet.USEast {
			respawned = n.Name
		}
	}
	if respawned == "" || respawned == "ha2/us-east" {
		t.Fatalf("no respawned east node in %v", got)
	}
	// The respawned replica bootstrapped the data from a live peer.
	nn := c.node(t, respawned)
	data, _, err := nn.Local().Get(context.Background(), "k")
	if err != nil || string(data) != "precious" {
		t.Fatalf("respawned node data = %q, %v", data, err)
	}
}

func TestHeartbeatPromotesNewPrimary(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	src := `
Wiera PB2 {
	Region1 = {name: LowLatencyInstance, region: us-west, primary: true,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
			copy(what: insert.object, to: all_regions);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}
}`
	c.startSrc(t, "pb2", src, map[string]string{"minReplicas": "1"})
	// Force min replicas to 1 so the dead primary is not respawned.
	c.server.mu.Lock()
	c.server.instances["pb2"].minReplicas = 1
	c.server.mu.Unlock()

	c.node(t, "pb2/us-west").Crash()
	c.server.HeartbeatOnce()
	p, err := c.server.CurrentPrimary("pb2")
	if err != nil {
		t.Fatal(err)
	}
	if p != "pb2/us-east" {
		t.Fatalf("promoted primary = %q", p)
	}
	east := c.node(t, "pb2/us-east")
	if !east.IsPrimary() {
		t.Fatal("east does not know it is primary")
	}
	// Puts still work.
	if _, err := east.Put(context.Background(), "k", []byte("v"), nil); err != nil {
		t.Fatal(err)
	}
}

func TestStopInstancesShutsDownNodes(t *testing.T) {
	c := newCluster(t)
	nodes := c.start(t, "tmp", "MultiPrimariesConsistency", nil)
	if err := c.server.StopInstances("tmp"); err != nil {
		t.Fatal(err)
	}
	// Give the async shutdowns a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if lookupNode(nodes[0].Name) == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("nodes not shut down")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGetForwardingPolicy(t *testing.T) {
	// Sec 5.4 setting: gets at the Azure node are forwarded to the AWS
	// memory node.
	c := newCluster(t, simnet.AzureUSEast, simnet.USEast)
	src := `
Wiera RemoteMemory {
	Region1 = {name: PersistentInstance, region: azure-us-east, primary: true};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	event(insert.into) : response {
		if (local_instance.isPrimary == true) {
			store(what: insert.object, to: local_instance);
			copy(what: insert.object, to: all_regions);
		} else {
			forward(what: insert.object, to: primary_instance);
		}
	}
	event(get.from) : response {
		forward(what: get.key, to: us-east);
	}
}`
	c.startSrc(t, "rm", src, nil)
	azure := c.node(t, "rm/azure-us-east")
	aws := c.node(t, "rm/us-east")
	if _, err := azure.Put(context.Background(), "k", []byte("v"), nil); err != nil {
		t.Fatal(err)
	}
	awsGetsBefore := aws.Local().GetCount()
	data, _, err := azure.Get(context.Background(), "k")
	if err != nil || string(data) != "v" {
		t.Fatalf("Get = %q, %v", data, err)
	}
	if aws.Local().GetCount() != awsGetsBefore+1 {
		t.Fatal("get was not forwarded to the AWS node")
	}
}

func TestNodeConfigValidation(t *testing.T) {
	c := newCluster(t, simnet.USEast)
	g, _ := policy.Builtin("EventualConsistency")
	l, _ := policy.Builtin("LowLatencyInstance")
	if _, err := NewNode(NodeConfig{}); err == nil {
		t.Fatal("missing fabric should fail")
	}
	if _, err := NewNode(NodeConfig{Fabric: c.fabric, GlobalSpec: l}); err == nil {
		t.Fatal("local spec as global should fail")
	}
	params := map[string]policy.Value{"t": policy.DurationVal(time.Second)}
	n, err := NewNode(NodeConfig{
		Name: "solo", Region: simnet.USEast, Fabric: c.fabric,
		LocalSpec: l, LocalParams: params, GlobalSpec: g, GlobalParams: params,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	// Single node, no peers: puts work locally, queue flushes are no-ops.
	if _, err := n.Put(context.Background(), "k", []byte("v"), nil); err != nil {
		t.Fatal(err)
	}
	n.queue.flushNow()
	data, _, err := n.Get(context.Background(), "k")
	if err != nil || string(data) != "v" {
		t.Fatalf("solo get = %q, %v", data, err)
	}
}

func TestRespawnName(t *testing.T) {
	if got := respawnName("x/us-east"); got != "x/us-east#2" {
		t.Fatalf("respawnName = %q", got)
	}
	if got := respawnName("x/us-east#2"); got != "x/us-east#3" {
		t.Fatalf("respawnName = %q", got)
	}
}

func TestMergeTierOverrides(t *testing.T) {
	base, _ := policy.Builtin("LowLatencyInstance")
	merged := mergeTierOverrides(base, []policy.TierDecl{
		{Label: "tier1", Attrs: []policy.Attr{{Name: "name", Val: policy.IdentVal("memory")}, {Name: "size", Val: policy.SizeVal(1 << 20)}}},
		{Label: "tier9", Attrs: []policy.Attr{{Name: "name", Val: policy.IdentVal("s3")}}},
	})
	if len(merged.Tiers) != 3 {
		t.Fatalf("tiers = %d", len(merged.Tiers))
	}
	v, _ := policy.FindAttr(merged.Tiers[0].Attrs, "size")
	if v.Size != 1<<20 {
		t.Fatalf("override lost: %v", v)
	}
	// Base spec unchanged.
	v, _ = policy.FindAttr(base.Tiers[0].Attrs, "size")
	if v.Size != 5<<30 {
		t.Fatalf("base mutated: %v", v)
	}
	if same := mergeTierOverrides(base, nil); same != base {
		t.Fatal("no-override merge should return the base spec")
	}
}

func TestServerRPCInterface(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	ep, err := c.fabric.NewEndpoint("app", simnet.USWest)
	if err != nil {
		t.Fatal(err)
	}
	src := `
Wiera Two {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}
}`
	payload, _ := transport.Encode(StartInstancesRequest{
		InstanceID: "rpc", PolicySrc: src, Params: map[string]string{"t": "1s"},
	})
	raw, err := ep.Call(context.Background(), "wiera", MethodStartInstances, payload)
	if err != nil {
		t.Fatal(err)
	}
	var resp StartInstancesResponse
	if err := transport.Decode(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != 2 {
		t.Fatalf("nodes = %v", resp.Nodes)
	}
	payload, _ = transport.Encode(GetInstancesRequest{InstanceID: "rpc"})
	if _, err := ep.Call(context.Background(), "wiera", MethodGetInstances, payload); err != nil {
		t.Fatal(err)
	}
	payload, _ = transport.Encode(StopInstancesRequest{InstanceID: "rpc"})
	if _, err := ep.Call(context.Background(), "wiera", MethodStopInstances, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Call(context.Background(), "wiera", "bogus", nil); err == nil {
		t.Fatal("unknown method should fail")
	}
}

func TestOpGate(t *testing.T) {
	g := newOpGate()
	if err := g.enter(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		g.freeze()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("freeze returned while an op was active")
	case <-time.After(10 * time.Millisecond):
	}
	g.exit()
	<-done
	// New entries block while frozen.
	entered := make(chan error, 1)
	go func() { entered <- g.enter() }()
	select {
	case <-entered:
		t.Fatal("enter succeeded while frozen")
	case <-time.After(10 * time.Millisecond):
	}
	g.thaw()
	if err := <-entered; err != nil {
		t.Fatal(err)
	}
	g.exit()
	// kill unblocks with an error.
	g.freeze()
	killed := make(chan error, 1)
	go func() { killed <- g.enter() }()
	time.Sleep(5 * time.Millisecond)
	g.kill()
	if err := <-killed; err == nil {
		t.Fatal("enter after kill should fail")
	}
}

func TestCollectStats(t *testing.T) {
	c := newCluster(t)
	nodes := c.start(t, "st", "MultiPrimariesConsistency", nil)
	west := c.node(t, nodes[0].Name)
	for i := 0; i < 5; i++ {
		if _, err := west.Put(context.Background(), fmt.Sprintf("k%d", i), []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := west.Get(context.Background(), "k0"); err != nil {
		t.Fatal(err)
	}
	stats, err := c.server.CollectStats("st")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(stats.Nodes))
	}
	var westStats *NodeStats
	for i := range stats.Nodes {
		if stats.Nodes[i].Name == nodes[0].Name {
			westStats = &stats.Nodes[i]
		}
	}
	if westStats == nil || westStats.Puts != 5 || westStats.Gets != 1 {
		t.Fatalf("west stats = %+v", westStats)
	}
	if westStats.PutMeanMs <= 0 {
		t.Fatal("no put latency recorded")
	}
	if westStats.Keys != 5 {
		t.Fatalf("keys = %d", westStats.Keys)
	}
	// The network monitor reports inter-node RTTs.
	if len(stats.RTTms) != 6 { // 3 nodes, 6 directed pairs
		t.Fatalf("rtt pairs = %d", len(stats.RTTms))
	}
	if ms := stats.RTTms[nodes[0].Name+"->"+nodes[1].Name]; ms <= 0 {
		t.Fatalf("rtt = %v", ms)
	}
	if out := stats.Render(); !strings.Contains(out, "network monitor") {
		t.Fatalf("render missing sections:\n%s", out)
	}
	if _, err := c.server.CollectStats("ghost"); err == nil {
		t.Fatal("unknown instance should fail")
	}
}

func TestPartitionHealEventualConvergence(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	src := `
Wiera EventualConsistency {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}
}`
	c.startSrc(t, "ph", src, nil)
	west := c.node(t, "ph/us-west")
	east := c.node(t, "ph/us-east")

	// Partition the replicas, then write on both sides.
	c.net.Partition(simnet.USWest, simnet.USEast)
	if _, err := west.Put(context.Background(), "k", []byte("west-during-partition"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := east.Put(context.Background(), "k", []byte("east-during-partition"), nil); err != nil {
		t.Fatal(err)
	}
	west.queue.flushNow() // delivery fails (unreachable); must not crash
	if _, _, err := east.Local().Get(context.Background(), "k"); err != nil {
		t.Fatal("east lost its own write during partition")
	}

	// Heal and overwrite once more; the system must converge.
	c.net.Heal(simnet.USWest, simnet.USEast)
	if _, err := west.Put(context.Background(), "k", []byte("after-heal"), nil); err != nil {
		t.Fatal(err)
	}
	west.queue.flushNow()
	east.queue.flushNow()
	dw, mw, err := west.Local().Get(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	de, me, err := east.Local().Get(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if mw.Version != me.Version || string(dw) != string(de) {
		t.Fatalf("diverged after heal: %q(v%d) vs %q(v%d)", dw, mw.Version, de, me.Version)
	}
}

func TestPolicyChangeUnderConcurrentLoad(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	src := `
Wiera EventualConsistency {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}
}`
	c.startSrc(t, "pc", src, nil)
	west := c.node(t, "pc/us-west")

	// Writers hammer while the server swaps the consistency model twice.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var putErrs stats.Counter
	var putOK stats.Counter
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := west.Put(context.Background(), fmt.Sprintf("w%d-k%d", w, i%16), []byte("v"), nil); err != nil {
					putErrs.Inc()
				} else {
					putOK.Inc()
				}
			}
		}(w)
	}
	for i := 0; i < 3; i++ {
		target := "MultiPrimariesConsistency"
		if i%2 == 1 {
			target = "EventualConsistency"
		}
		if err := c.server.ApplyChange(ChangeRequestMsg{
			InstanceID: "pc", What: "consistency", To: target, From: "test",
		}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if putErrs.Value() > 0 {
		t.Fatalf("%d puts failed during policy changes", putErrs.Value())
	}
	if putOK.Value() == 0 {
		t.Fatal("no puts completed")
	}
	// Final state: multi-primaries (i=2 set it back).
	if got := west.PolicyName(); got != "MultiPrimariesConsistency" {
		t.Fatalf("final policy = %q", got)
	}
	// Writes still work after the churn and replicate synchronously now.
	if _, err := west.Put(context.Background(), "final", []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	east := c.node(t, "pc/us-east")
	if _, _, err := east.Local().Get(context.Background(), "final"); err != nil {
		t.Fatal("synchronous replication broken after policy churn")
	}
}

func TestSnapshotSyncTransfersAllKeys(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	src := `
Wiera Solo {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}, tier2 = {name: ebs-ssd, size: 5G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
	}
}`
	c.startSrc(t, "sn", src, nil)
	west := c.node(t, "sn/us-west")
	east := c.node(t, "sn/us-east")
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := west.Put(context.Background(), key, []byte(key+"-data"), nil); err != nil {
			t.Fatal(err)
		}
	}
	// No replication policy: east is empty until it syncs a snapshot.
	if _, _, err := east.Local().Get(context.Background(), "k0"); err == nil {
		t.Fatal("east should be empty before sync")
	}
	if err := east.SyncFrom(west.Name()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		data, _, err := east.Local().Get(context.Background(), key)
		if err != nil || string(data) != key+"-data" {
			t.Fatalf("after sync, %s = %q, %v", key, data, err)
		}
	}
}

// Sec 3.2.2 modular instances: a second Wiera instance mounts the first
// one's node as a read-only storage tier (the paper's RAW-BIG-DATA /
// INTERMEDIATE-DATA assembly).
func TestModularInstanceAcrossWieraInstances(t *testing.T) {
	c := newCluster(t, simnet.USEast)
	// The raw-data instance: a durable store holding the input data set.
	rawSrc := `
Wiera RawBigData {
	Region1 = {name: PersistentInstance, region: us-east};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
	}
}`
	c.startSrc(t, "bigdata", rawSrc, nil)
	raw := c.node(t, "bigdata/us-east")
	if _, err := raw.Put(context.Background(), "input-000", []byte("raw bytes"), nil); err != nil {
		t.Fatal(err)
	}

	// The intermediate instance mounts bigdata's node as read-only tier2.
	interLocal := `
Tiera IntermediateData {
	tier1: {name: memory, size: 1G};
	tier2: {name: instance, ref: "bigdata/us-east", readonly: true};
}`
	interGlobal := `
Wiera Intermediate {
	Region1 = {name: IntermediateData, region: us-east};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
	}
}`
	nodes, err := c.server.StartInstances(StartInstancesRequest{
		InstanceID: "inter", PolicySrc: interGlobal,
		LocalSpecs: map[string]string{"IntermediateData": interLocal},
		Params:     map[string]string{},
	})
	if err != nil {
		t.Fatal(err)
	}
	inter := c.node(t, nodes[0].Name)

	// Reads of raw data fall through tier1 (miss) to the mounted instance.
	data, _, err := inter.Local().Get(context.Background(), "input-000")
	if err != nil || string(data) != "raw bytes" {
		t.Fatalf("read through instance tier = %q, %v", data, err)
	}
	// Intermediate results land in the local memory tier, not in bigdata.
	if _, err := inter.Put(context.Background(), "result-000", []byte("derived"), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := raw.Local().Get(context.Background(), "result-000"); err == nil {
		t.Fatal("write leaked into the read-only backing instance")
	}
	// The read-only tier rejects writes directly.
	t2, ok := inter.Local().Tier("tier2")
	if !ok {
		t.Fatal("tier2 missing")
	}
	if err := t2.Put(context.Background(), "x", []byte("y")); err == nil {
		t.Fatal("read-only instance tier accepted a write")
	}
	// A dangling ref fails cleanly.
	badLocal := `
Tiera Bad {
	tier1: {name: instance, ref: "no/such/node"};
}`
	badGlobal := `
Wiera BadG {
	Region1 = {name: Bad, region: us-east};
	event(insert.into) : response { store(what: insert.object, to: local_instance); }
}`
	if _, err := c.server.StartInstances(StartInstancesRequest{
		InstanceID: "bad", PolicySrc: badGlobal,
		LocalSpecs: map[string]string{"Bad": badLocal},
	}); err == nil {
		t.Fatal("dangling instance ref should fail")
	}
}

func TestStartInstancesTeardownOnPartialFailure(t *testing.T) {
	// Only us-west has a Tiera server; a policy also requesting eu-west
	// must fail and tear down the node it already spawned.
	c := newCluster(t, simnet.USWest)
	src := `
Wiera Partial {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};
	Region2 = {name: LowLatencyInstance, region: eu-west,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
	}
}`
	if _, err := c.server.StartInstances(StartInstancesRequest{
		InstanceID: "partial", PolicySrc: src, Params: map[string]string{"t": "1s"},
	}); err == nil {
		t.Fatal("start with a missing region server should fail")
	}
	// The spawned us-west node must have been shut down.
	deadline := time.Now().Add(2 * time.Second)
	for lookupNode("partial/us-west") != nil {
		if time.Now().After(deadline) {
			t.Fatal("partially spawned node not torn down")
		}
		time.Sleep(time.Millisecond)
	}
	// The instance id is reusable after the failure.
	if _, err := c.server.GetInstances("partial"); err == nil {
		t.Fatal("failed instance should not be registered")
	}
}

func TestMinReplicasParam(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	src := `
Wiera Two {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 1G}, tier2 = {name: ebs-ssd, size: 1G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
	}
}`
	c.startSrc(t, "mr", src, map[string]string{"minReplicas": "1"})
	// Kill one replica: with minReplicas=1 the heartbeat must NOT respawn.
	c.node(t, "mr/us-east").Crash()
	c.server.HeartbeatOnce()
	nodes, err := c.server.GetInstances("mr")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Name != "mr/us-west" {
		t.Fatalf("membership = %v, want just us-west (minReplicas=1)", nodes)
	}
}

package wiera

import (
	"context"
	"sync"

	"repro/internal/flight"
	"repro/internal/object"
	"repro/internal/ring"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// shardManager is a node's view of the keyspace partition: the current
// (and, mid-rebalance, previous) shard map, the node's own shard index,
// ownership checks for incoming operations, and the drain that streams
// moved keys to their new owners when the map changes. A node of an
// unsharded instance (one worker per region) never receives a RingMsg and
// the manager stays inert: every check passes, every key is owned.
//
// The rebalance protocol leans on three local rules:
//
//  1. Once a map is installed, operations on keys this shard no longer
//     owns NACK with WrongShardError — checked after the op gate, so an
//     in-flight op never lands a write the drain cannot see.
//  2. While the map is unsettled, reads and first writes of keys the node
//     now owns but has not yet received fall back to the previous owner
//     (fetch its latest version and continue the version counter from it,
//     so a migrated v5 can never outrank a freshly acked write).
//  3. Updates arriving for keys the node does not own (late hint replays,
//     queued fan-outs from old owners) are forwarded to the in-region
//     owner instead of stranding a copy here.
type shardManager struct {
	n *Node

	mu      sync.Mutex
	cur     *ring.Table // nil until a RingMsg arrives (unsharded)
	prev    *ring.Table // outgoing map during an unsettled rebalance
	settled bool
	shard   int // this node's shard under cur; -1 when leaving the pool

	// migMu serializes whole drains: a re-sent RingDrain waits for the
	// running pass and then finds nothing left to move (idempotence).
	migMu sync.Mutex

	epochG    *telemetry.Gauge
	shardG    *telemetry.Gauge
	vnodesG   *telemetry.Gauge
	keysG     *telemetry.Gauge
	bytesG    *telemetry.Gauge
	inflightG *telemetry.Gauge

	keysMoved  *telemetry.Counter
	bytesMoved *telemetry.Counter
	wrongShard *telemetry.Counter
}

// newShardManager wires the ring_* telemetry families. Families exist even
// on unsharded nodes (gauges just stay zero), so wieractl ring always has
// something to read.
func newShardManager(n *Node) *shardManager {
	reg := n.fabric.Metrics()
	region := string(n.region)
	gauge := func(name, help string) *telemetry.Gauge {
		return reg.Gauge(name, help, "node", "region").With(n.name, region)
	}
	counter := func(name, help string) *telemetry.Counter {
		return reg.Counter(name, help, "node", "region").With(n.name, region)
	}
	m := &shardManager{
		n:       n,
		shard:   -1,
		settled: true,
		epochG:  gauge("ring_epoch", "Shard map epoch installed at this worker."),
		shardG:  gauge("ring_shard", "Shard index this worker serves (-1 while unsharded or leaving)."),
		vnodesG: gauge("ring_vnodes", "Virtual nodes per shard on this worker's ring."),
		keysG:   gauge("ring_keys", "Keys held by this worker."),
		bytesG:  gauge("ring_bytes", "Bytes (latest versions) held by this worker."),
		inflightG: gauge("ring_migrations_inflight",
			"Key migrations this worker is currently streaming (1 while draining)."),
		keysMoved: counter("ring_keys_moved_total",
			"Keys this worker streamed to new owners during rebalances."),
		bytesMoved: counter("ring_bytes_moved_total",
			"Bytes this worker streamed to new owners during rebalances."),
		wrongShard: counter("ring_wrong_shard_total",
			"Operations NACKed because this worker does not own the key."),
	}
	m.shardG.Set(-1)
	return m
}

// install adopts a shard map pushed by the control plane. Stale epochs are
// ignored so reordered control RPCs cannot roll the node backwards.
func (m *shardManager) install(msg RingMsg) {
	if msg.Map == nil {
		return
	}
	m.mu.Lock()
	if m.cur != nil && msg.Map.Epoch < m.cur.Epoch() {
		m.mu.Unlock()
		return
	}
	m.cur = ring.NewTable(msg.Map)
	m.prev = nil
	if !msg.Settled && msg.Prev != nil {
		m.prev = ring.NewTable(msg.Prev)
	}
	m.settled = msg.Settled
	m.shard = msg.Map.ShardOf(string(m.n.region), m.n.name)
	vnodes := msg.Map.Vnodes
	if vnodes <= 0 {
		vnodes = ring.DefaultVnodes
	}
	m.mu.Unlock()
	m.epochG.Set(float64(msg.Map.Epoch))
	m.shardG.Set(float64(m.ownShard()))
	m.vnodesG.Set(float64(vnodes))
	m.updateOwnershipGauges()
}

// view snapshots the manager state for lock-free use on the data path.
func (m *shardManager) view() (cur, prev *ring.Table, shard int, settled bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur, m.prev, m.shard, m.settled
}

func (m *shardManager) ownShard() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shard
}

// checkKey NACKs an application operation on a key this shard does not
// own, naming the in-region owner so the caller can retry without a full
// map refresh. Unsharded nodes accept everything.
func (m *shardManager) checkKey(key string) error {
	cur, _, shard, _ := m.view()
	if cur == nil {
		return nil
	}
	owner := cur.Owner(key)
	if owner == shard {
		return nil
	}
	m.wrongShard.Inc()
	return &WrongShardError{
		Epoch: cur.Epoch(), Shard: owner,
		Owner: cur.WorkerForShard(string(m.n.region), owner),
	}
}

// ownsKey reports whether this shard owns key under the current map.
func (m *shardManager) ownsKey(key string) bool {
	cur, _, shard, _ := m.view()
	return cur == nil || cur.Owner(key) == shard
}

// prevOwner names the in-region worker that owned key under the outgoing
// map ("" when settled, not a fallback candidate, or this node itself).
func (m *shardManager) prevOwner(key string) string {
	cur, prev, shard, settled := m.view()
	if settled || prev == nil || cur == nil || cur.Owner(key) != shard {
		return ""
	}
	w := prev.Worker(string(m.n.region), key)
	if w == m.n.name {
		return ""
	}
	return w
}

// bootstrapKey prepares the first write of key during an unsettled
// rebalance: when the node owns key but holds no version yet, it pulls the
// previous owner's latest version so the local version counter continues
// past it. Without this, a fresh worker's v1 write would lose the LWW
// version-number comparison against a later-arriving migrated v5.
func (m *shardManager) bootstrapKey(ctx context.Context, key string) {
	p := m.prevOwner(key)
	if p == "" {
		return
	}
	if _, err := m.n.local.Objects().Latest(key); err == nil {
		return // already have history (drained or previously bootstrapped)
	}
	data, meta, ok := m.fetchFrom(ctx, p, key)
	if !ok {
		// The previous owner has already drained and deleted the key; its
		// push was acknowledged here before the delete, so local state is
		// current (or the key never existed). Nothing to do either way.
		return
	}
	_, _ = m.n.local.ApplyRemote(ctx, meta, data)
	flight.FromContext(ctx).AddHop(flight.Hop{
		Kind: flight.HopRepair, Name: "ring-bootstrap:" + p, Bytes: int64(len(data)),
	})
}

// fetchFromPrev serves a read of an owned-but-missing key during an
// unsettled rebalance from the previous owner. On a miss there it rechecks
// the local store: the drain deletes only after its push is acknowledged,
// so a key absent at the previous owner is either already here or gone.
func (m *shardManager) fetchFromPrev(ctx context.Context, key string) ([]byte, object.Meta, bool) {
	p := m.prevOwner(key)
	if p == "" {
		return nil, object.Meta{}, false
	}
	if data, meta, ok := m.fetchFrom(ctx, p, key); ok {
		return data, meta, true
	}
	data, meta, err := m.n.local.Get(ctx, key)
	return data, meta, err == nil
}

// fetchFrom reads key's latest version from peer (ForwardGet skips the
// peer's ownership check, which would NACK keys it is migrating away).
func (m *shardManager) fetchFrom(ctx context.Context, peer, key string) ([]byte, object.Meta, bool) {
	payload, err := m.n.enc(GetRequest{Key: key})
	if err != nil {
		return nil, object.Meta{}, false
	}
	start := m.n.clk.Now()
	raw, err := m.n.ep.Call(ctx, peer, MethodForwardGet, payload)
	if err != nil {
		return nil, object.Meta{}, false
	}
	var resp GetResponse
	if err := transport.Decode(raw, &resp); err != nil {
		return nil, object.Meta{}, false
	}
	m.n.addRPCHop(ctx, peer, start, int64(len(resp.Data)))
	return resp.Data, resp.Meta, true
}

// applyOrForward installs a replica update: locally when this shard owns
// the key (or the instance is unsharded), otherwise by forwarding to the
// in-region owner so late hint replays and queued fan-outs from old owners
// cannot strand versions on drained workers. Forwarded updates are marked
// so a disagreeing map on the receiver cannot bounce them forever.
func (m *shardManager) applyOrForward(ctx context.Context, msg UpdateMsg) (bool, error) {
	cur, _, shard, _ := m.view()
	if cur == nil || msg.Forwarded || cur.Owner(msg.Meta.Key) == shard {
		return m.n.local.ApplyRemote(ctx, msg.Meta, msg.Data)
	}
	target := cur.Worker(string(m.n.region), msg.Meta.Key)
	if target == "" || target == m.n.name {
		return m.n.local.ApplyRemote(ctx, msg.Meta, msg.Data)
	}
	msg.Forwarded = true
	payload, err := m.n.enc(msg)
	if err != nil {
		return false, err
	}
	raw, err := m.n.ep.Call(ctx, target, MethodApplyUpdate, payload)
	if err != nil {
		return false, err
	}
	var ack UpdateAck
	if err := transport.Decode(raw, &ack); err != nil {
		return false, err
	}
	return ack.Accepted, nil
}

// drain streams every key this shard no longer owns to its new in-region
// owner and deletes the local copies, returning the number of keys moved.
// It freezes the op gate first: in-flight operations complete (and their
// queued updates flush) before the snapshot, and operations parked behind
// the freeze re-check ownership when they resume, so a single pass moves
// everything. Local deletion happens only after the receiving owner has
// acknowledged the push — an acked write is never in zero places.
func (m *shardManager) drain(ctx context.Context) (int, error) {
	m.migMu.Lock()
	defer m.migMu.Unlock()
	cur, _, shard, _ := m.view()
	if cur == nil {
		return 0, nil
	}
	m.inflightG.Set(1)
	defer m.inflightG.Set(0)

	m.n.gate.freeze()
	defer m.n.gate.thaw()
	m.n.queue.flushNow()

	fa := m.n.flightRec.Begin("ring-drain", "", m.n.name, string(m.n.region), m.n.PolicyName())
	var retErr error
	defer func() { fa.End(retErr) }()

	// Group moved keys by their new in-region owner.
	region := string(m.n.region)
	byTarget := make(map[string][]string)
	for _, key := range m.n.local.Objects().Keys() {
		owner := cur.Owner(key)
		if owner == shard {
			continue
		}
		target := cur.WorkerForShard(region, owner)
		if target == "" || target == m.n.name {
			continue
		}
		byTarget[target] = append(byTarget[target], key)
	}

	moved := 0
	for target, keys := range byTarget {
		n, err := m.pushKeys(ctx, target, keys, fa)
		moved += n
		if err != nil {
			retErr = err
			return moved, err
		}
	}
	m.updateOwnershipGauges()
	return moved, nil
}

// pushKeys streams the latest versions of keys to target in chunks bounded
// by the replication batcher's caps (entry count and payload bytes), so a
// large keyspace migrates in bounded messages sized like every other
// batched push. Local copies are deleted only after their chunk is
// acknowledged — an acked write is never in zero places.
func (m *shardManager) pushKeys(ctx context.Context, target string, keys []string, fa *flight.Active) (int, error) {
	maxBytes, maxEntries := m.n.batch.caps()
	moved := 0
	req := RepairPushRequest{}
	// budget sizes the chunk (payload + per-entry overhead); chunkBytes
	// tracks payload only, the unit ring_bytes_moved_total reports.
	var budget, chunkBytes int64
	sent := make([]string, 0, maxEntries)

	flush := func() error {
		if len(req.Updates) == 0 {
			return nil
		}
		payload, err := m.n.enc(req)
		if err != nil {
			return err
		}
		start := m.n.clk.Now()
		if _, err := m.n.ep.Call(ctx, target, MethodRepairPush, payload); err != nil {
			fa.AddHop(flight.Hop{Kind: flight.HopRPC, Name: target,
				Duration: m.n.clk.Since(start), Err: err.Error()})
			return err
		}
		fa.AddHop(flight.Hop{Kind: flight.HopRPC, Name: target,
			Duration: m.n.clk.Since(start), Bytes: chunkBytes})
		for _, key := range sent {
			_ = m.n.local.Remove(ctx, key)
		}
		m.keysMoved.Add(int64(len(sent)))
		m.bytesMoved.Add(chunkBytes)
		moved += len(sent)
		req = RepairPushRequest{}
		budget, chunkBytes = 0, 0
		sent = sent[:0]
		return nil
	}

	for _, key := range keys {
		meta, err := m.n.local.Objects().Latest(key)
		if err != nil {
			continue
		}
		data, meta, err := m.n.local.GetVersion(ctx, key, meta.Version)
		if err != nil {
			continue
		}
		sz := int64(len(data)) + batchEntryOverhead
		if len(req.Updates) > 0 && (budget+sz > maxBytes || len(req.Updates) >= maxEntries) {
			if err := flush(); err != nil {
				return moved, err
			}
		}
		req.Updates = append(req.Updates, UpdateMsg{Meta: meta, Data: data})
		budget += sz
		chunkBytes += int64(len(data))
		sent = append(sent, key)
	}
	if err := flush(); err != nil {
		return moved, err
	}
	return moved, nil
}

// updateOwnershipGauges refreshes ring_keys / ring_bytes from the local
// store. Called on map installs, after drains, and from statsLocal so a
// CollectStats round trip always leaves the gauges current for wieractl.
func (m *shardManager) updateOwnershipGauges() {
	keys, bytes := m.n.local.Usage()
	m.keysG.Set(float64(keys))
	m.bytesG.Set(float64(bytes))
}

// ringEpoch reports the installed map's epoch (0 when unsharded).
func (m *shardManager) ringEpoch() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur == nil {
		return 0
	}
	return m.cur.Epoch()
}

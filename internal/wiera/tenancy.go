package wiera

import (
	"sort"
	"sync"
	"time"

	"repro/internal/flight"
	"repro/internal/telemetry"
	"repro/internal/tenant"
)

// defaultTenantSlots is the weighted-fair scheduler's concurrency when the
// tenantSlots spawn param is absent: enough parallelism to keep the tiers
// busy, small enough that a backlogged tenant queues in the scheduler (where
// stride fairness applies) instead of deep in the tier's FIFO reservation
// queue (where it would inflate every tenant's wait).
const defaultTenantSlots = 4

// throttleEventEvery suppresses journal spam: at most one tenant.throttle
// event per tenant per interval, edge-triggered on the first denial.
const throttleEventEvery = time.Second

// tenantState is one tenant's admission + accounting state on a node.
type tenantState struct {
	cfg   tenant.Config
	iops  *tenant.Bucket
	bytes *tenant.Bucket

	ops       *telemetry.Counter
	ingress   *telemetry.Counter
	egress    *telemetry.Counter
	thrIOPS   *telemetry.Counter
	thrBytes  *telemetry.Counter
	queueWait *telemetry.Histogram
	putLat    *telemetry.Histogram
	getLat    *telemetry.Histogram

	mu            sync.Mutex
	lastThrottled time.Time
}

// tenantManager enforces per-tenant quotas and weighted-fair scheduling on
// one node. A nil manager is valid and disables tenancy at zero cost: every
// method no-ops, keys stay unqualified, and the seed data path is unchanged.
type tenantManager struct {
	n     *Node
	sched *tenant.Scheduler

	mu     sync.Mutex
	states map[string]*tenantState
}

// newTenantManager wires the manager from spawn config. Returns nil when the
// instance declares no tenants.
func newTenantManager(n *Node, cfg NodeConfig) *tenantManager {
	if len(cfg.Tenants) == 0 {
		return nil
	}
	slots := cfg.TenantSlots
	if slots <= 0 {
		slots = defaultTenantSlots
	}
	tm := &tenantManager{
		n:      n,
		sched:  tenant.NewScheduler(slots, cfg.Tenants),
		states: make(map[string]*tenantState),
	}
	for _, c := range cfg.Tenants {
		tm.states[c.ID] = tm.newState(c)
	}
	if _, ok := tm.states[tenant.DefaultID]; !ok {
		tm.states[tenant.DefaultID] = tm.newState(tenant.Config{ID: tenant.DefaultID, Weight: 1})
	}
	return tm
}

func (tm *tenantManager) newState(c tenant.Config) *tenantState {
	reg := tm.n.fabric.Metrics()
	node := tm.n.name
	ops := reg.Counter("tenant_ops_total",
		"Admitted operations per tenant.", "tenant", "node", "op")
	bytes := reg.Counter("tenant_bytes_total",
		"Payload bytes moved per tenant.", "tenant", "node", "dir")
	thr := reg.Counter("tenant_throttled_total",
		"Operations denied by tenant quota admission.", "tenant", "node", "kind")
	qw := reg.Histogram("tenant_queue_wait_seconds",
		"Time spent queued in the weighted-fair scheduler.", "tenant", "node")
	lat := reg.Histogram("tenant_op_seconds",
		"Application-perceived operation latency per tenant.", "tenant", "node", "op")
	return &tenantState{
		cfg:       c,
		iops:      tenant.NewBucket(c.IOPS, c.IOPS),
		bytes:     tenant.NewBucket(c.Bytes, c.Bytes),
		ops:       ops.With(c.ID, node, "all"),
		ingress:   bytes.With(c.ID, node, "in"),
		egress:    bytes.With(c.ID, node, "out"),
		thrIOPS:   thr.With(c.ID, node, "iops"),
		thrBytes:  thr.With(c.ID, node, "bytes"),
		queueWait: qw.With(c.ID, node),
		putLat:    lat.With(c.ID, node, "put"),
		getLat:    lat.With(c.ID, node, "get"),
	}
}

// state returns the tenant's state, lazily adding unknown tenants with
// default weight and unlimited quota (the untenanted-compatibility path for
// keys qualified with an ID the spawn params never declared).
func (tm *tenantManager) state(id string) *tenantState {
	tm.mu.Lock()
	defer tm.mu.Unlock()
	st, ok := tm.states[id]
	if !ok {
		st = tm.newState(tenant.Config{ID: id, Weight: 1})
		tm.states[id] = st
	}
	return st
}

// tenantOf derives the owning tenant from a (possibly qualified) key.
func (tm *tenantManager) tenantOf(key string) string {
	if tm == nil {
		return tenant.DefaultID
	}
	id, _ := tenant.Split(key)
	return id
}

// admit runs quota admission for one operation with nbytes of ingress
// payload. It is checked before the op gate so a throttled request is NACKed
// without consuming any node resources. The returned error is the typed,
// marker-prefixed ErrQuotaExceeded the client treats as non-retryable.
func (tm *tenantManager) admit(id string, nbytes int) error {
	if tm == nil {
		return nil
	}
	st := tm.state(id)
	now := tm.n.clk.Now()
	if !st.iops.Take(1, now) {
		tm.throttle(st, "iops", now)
		return &tenant.ErrQuotaExceeded{Tenant: id, Kind: "iops"}
	}
	if nbytes > 0 && !st.bytes.Take(float64(nbytes), now) {
		// The op's IOPS token is already spent; that slightly undercounts the
		// tenant's next window, which errs against the violator, not victims.
		tm.throttle(st, "bytes", now)
		return &tenant.ErrQuotaExceeded{Tenant: id, Kind: "bytes"}
	}
	return nil
}

// throttle counts a denial and journals an edge-triggered event.
func (tm *tenantManager) throttle(st *tenantState, kind string, now time.Time) {
	if kind == "bytes" {
		st.thrBytes.Inc()
	} else {
		st.thrIOPS.Inc()
	}
	st.mu.Lock()
	fire := st.lastThrottled.IsZero() || now.Sub(st.lastThrottled) >= throttleEventEvery
	if fire {
		st.lastThrottled = now
	}
	st.mu.Unlock()
	if fire {
		tm.n.fabric.Events().Record("tenant.throttle", tm.n.name,
			"tenant "+st.cfg.ID+" over "+kind+" quota",
			map[string]string{"tenant": st.cfg.ID, "kind": kind, "instance": tm.n.instanceID})
	}
}

// acquire claims a weighted-fair scheduler slot for the tenant, recording the
// queue wait on the flight record and the tenant_queue_wait_seconds
// histogram. Callers must pair a nil-error return with release().
func (tm *tenantManager) acquire(id string, fa *flight.Active) error {
	if tm == nil {
		return nil
	}
	st := tm.state(id)
	start := tm.n.clk.Now()
	if err := tm.sched.Acquire(id); err != nil {
		return err
	}
	wait := tm.n.clk.Since(start)
	st.queueWait.Record(wait)
	if wait > 0 {
		fa.AddHop(flight.Hop{Kind: flight.HopQueue, Name: "wfq", Wait: wait, Duration: wait})
	}
	return nil
}

func (tm *tenantManager) release() {
	if tm == nil {
		return
	}
	tm.sched.Release()
}

// observe accounts one completed operation: op count, payload bytes in the
// right direction, and the per-tenant latency histogram that backs the
// tenant's SLO objectives.
func (tm *tenantManager) observe(id, op string, elapsed time.Duration, nbytes int) {
	if tm == nil {
		return
	}
	st := tm.state(id)
	st.ops.Inc()
	switch op {
	case "put":
		st.ingress.Add(int64(nbytes))
		st.putLat.Record(elapsed)
	case "get":
		st.egress.Add(int64(nbytes))
		st.getLat.Record(elapsed)
	}
}

// objectives derives per-tenant SLO objectives from the node-level
// declarations: every latency objective gains one clone per configured
// tenant, sourced from that tenant's own latency histogram, so the burn-rate
// engine tracks each tenant's error budget independently.
func (tm *tenantManager) objectives(declared []flight.Objective) []flight.Objective {
	if tm == nil {
		return nil
	}
	tm.mu.Lock()
	states := make([]*tenantState, 0, len(tm.states))
	for _, st := range tm.states {
		states = append(states, st)
	}
	tm.mu.Unlock()
	var out []flight.Objective
	for _, o := range declared {
		if o.Threshold <= 0 || (o.Op != "put" && o.Op != "get") {
			continue
		}
		th := telemetry.AlignedBound(o.Threshold)
		for _, st := range states {
			h := st.putLat
			if o.Op == "get" {
				h = st.getLat
			}
			t := o
			t.Name = o.Name + "/" + st.cfg.ID
			t.Threshold = th
			hist := h
			t.Source = func() (int64, int64) {
				return hist.CountLE(th), hist.Count()
			}
			out = append(out, t)
		}
	}
	return out
}

// close unblocks every queued waiter (node shutdown).
func (tm *tenantManager) close() {
	if tm == nil {
		return
	}
	tm.sched.Close()
}

// TenantStats is one tenant's accounting snapshot on one node.
type TenantStats struct {
	ID         string
	Weight     int
	IOPSQuota  float64
	BytesQuota float64
	Ops        int64
	BytesIn    int64
	BytesOut   int64
	Throttled  int64
	QueueP99Ms float64
	PutP99Ms   float64
	GetP99Ms   float64
}

// snapshot returns per-tenant stats sorted by ID.
func (tm *tenantManager) snapshot() []TenantStats {
	if tm == nil {
		return nil
	}
	tm.mu.Lock()
	ids := make([]string, 0, len(tm.states))
	for id := range tm.states {
		ids = append(ids, id)
	}
	tm.mu.Unlock()
	sort.Strings(ids)
	toMs := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	out := make([]TenantStats, 0, len(ids))
	for _, id := range ids {
		st := tm.state(id)
		out = append(out, TenantStats{
			ID:         id,
			Weight:     st.cfg.Weight,
			IOPSQuota:  st.cfg.IOPS,
			BytesQuota: st.cfg.Bytes,
			Ops:        st.ops.Value(),
			BytesIn:    st.ingress.Value(),
			BytesOut:   st.egress.Value(),
			Throttled:  st.thrIOPS.Value() + st.thrBytes.Value(),
			QueueP99Ms: toMs(st.queueWait.Percentile(99)),
			PutP99Ms:   toMs(st.putLat.Percentile(99)),
			GetP99Ms:   toMs(st.getLat.Percentile(99)),
		})
	}
	return out
}

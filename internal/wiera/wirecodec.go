package wiera

// wirecodec.go: hand-rolled binary encodings (internal/wire) for the
// hot-path RPC messages — put/get/remove, replication updates and batches,
// EC fragment fetches, and the anti-entropy repair exchange. Control-plane
// messages (ring updates, policy changes, placement, heat, admin) stay on
// gob: they are rare, and gob's self-describing streams are more tolerant
// of struct evolution.
//
// Field order is the wire contract: encoders and decoders below must walk
// fields in the same sequence, and any layout change requires bumping
// wire.Version (DESIGN.md §14).

import (
	"repro/internal/object"
	"repro/internal/repair"
	"repro/internal/wire"
)

// One-byte method tags. Never reuse a retired value — old peers may still
// emit it during a rolling upgrade.
const (
	tagPutRequest           = 0x01
	tagPutResponse          = 0x02
	tagGetRequest           = 0x03
	tagGetResponse          = 0x04
	tagGetVersionRequest    = 0x05
	tagRemoveRequest        = 0x06
	tagRemoveVersionRequest = 0x07
	tagUpdateMsg            = 0x08
	tagUpdateAck            = 0x09
	tagUpdateBatchRequest   = 0x0A
	tagUpdateBatchResponse  = 0x0B
	tagECFragRequest        = 0x0C
	tagECFragResponse       = 0x0D
	tagRepairDigestRequest  = 0x0E
	tagRepairDigestResponse = 0x0F
	tagRepairEntriesRequest = 0x10
	tagRepairEntriesRespons = 0x11
	tagRepairPullRequest    = 0x12
	tagRepairPullResponse   = 0x13
	tagRepairPushRequest    = 0x14
	tagRepairPushResponse   = 0x15
	tagEmpty                = 0x16
)

// ---------------------------------------------------------------------------
// Shared field-group helpers. These take pointers and stay concrete so the
// compiler keeps the Reader on the stack (see wire.Unmarshaler docs).

func sizeStrings(s []string) int {
	n := wire.SizeUvarint(uint64(len(s)))
	for _, v := range s {
		n += wire.SizeString(v)
	}
	return n
}

func appendStrings(dst []byte, s []string) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(s)))
	for _, v := range s {
		dst = wire.AppendString(dst, v)
	}
	return dst
}

func readStrings(r *wire.Reader, s *[]string) {
	n := r.Count()
	if r.Err() != nil {
		return
	}
	if n == 0 {
		*s = nil
		return
	}
	if cap(*s) >= n {
		*s = (*s)[:n]
	} else {
		*s = make([]string, n)
	}
	for i := range *s {
		r.StringInto(&(*s)[i])
	}
}

func sizeInts(s []int) int {
	n := wire.SizeUvarint(uint64(len(s)))
	for _, v := range s {
		n += wire.SizeVarint(int64(v))
	}
	return n
}

func appendInts(dst []byte, s []int) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(s)))
	for _, v := range s {
		dst = wire.AppendVarint(dst, int64(v))
	}
	return dst
}

func readInts(r *wire.Reader, s *[]int) {
	n := r.Count()
	if r.Err() != nil {
		return
	}
	if n == 0 {
		*s = nil
		return
	}
	if cap(*s) >= n {
		*s = (*s)[:n]
	} else {
		*s = make([]int, n)
	}
	for i := range *s {
		(*s)[i] = int(r.Varint())
	}
}

func sizeMeta(m *object.Meta) int {
	return wire.SizeString(m.Key) +
		wire.SizeVarint(int64(m.Version)) +
		wire.SizeVarint(m.Size) +
		1 + // Dirty
		wire.SizeString(m.TierName) +
		wire.SizeString(m.Origin) +
		wire.SizeTime(m.CreatedAt) +
		wire.SizeTime(m.ModifiedAt) +
		wire.SizeTime(m.AccessedAt) +
		wire.SizeVarint(m.AccessCnt) +
		sizeStrings(m.Tags) +
		2 + // Compressed, Encrypted
		wire.SizeVarint(int64(m.ECK)) +
		wire.SizeVarint(int64(m.ECM)) +
		sizeInts(m.ECFrags)
}

func appendMeta(dst []byte, m *object.Meta) []byte {
	dst = wire.AppendString(dst, m.Key)
	dst = wire.AppendVarint(dst, int64(m.Version))
	dst = wire.AppendVarint(dst, m.Size)
	dst = wire.AppendBool(dst, m.Dirty)
	dst = wire.AppendString(dst, m.TierName)
	dst = wire.AppendString(dst, m.Origin)
	dst = wire.AppendTime(dst, m.CreatedAt)
	dst = wire.AppendTime(dst, m.ModifiedAt)
	dst = wire.AppendTime(dst, m.AccessedAt)
	dst = wire.AppendVarint(dst, m.AccessCnt)
	dst = appendStrings(dst, m.Tags)
	dst = wire.AppendBool(dst, m.Compressed)
	dst = wire.AppendBool(dst, m.Encrypted)
	dst = wire.AppendVarint(dst, int64(m.ECK))
	dst = wire.AppendVarint(dst, int64(m.ECM))
	return appendInts(dst, m.ECFrags)
}

func readMeta(r *wire.Reader, m *object.Meta) {
	r.StringInto(&m.Key)
	m.Version = object.Version(r.Varint())
	m.Size = r.Varint()
	m.Dirty = r.Bool()
	r.StringInto(&m.TierName)
	r.StringInto(&m.Origin)
	m.CreatedAt = r.Time()
	m.ModifiedAt = r.Time()
	m.AccessedAt = r.Time()
	m.AccessCnt = r.Varint()
	readStrings(r, &m.Tags)
	m.Compressed = r.Bool()
	m.Encrypted = r.Bool()
	m.ECK = int(r.Varint())
	m.ECM = int(r.Varint())
	readInts(r, &m.ECFrags)
}

func sizeUpdate(u *UpdateMsg) int {
	return sizeMeta(&u.Meta) + wire.SizeBytes(u.Data) + 1
}

func appendUpdate(dst []byte, u *UpdateMsg) []byte {
	dst = appendMeta(dst, &u.Meta)
	dst = wire.AppendBytes(dst, u.Data)
	return wire.AppendBool(dst, u.Forwarded)
}

func readUpdate(r *wire.Reader, u *UpdateMsg) {
	readMeta(r, &u.Meta)
	u.Data = r.Bytes()
	u.Forwarded = r.Bool()
}

func sizeUpdates(us []UpdateMsg) int {
	n := wire.SizeUvarint(uint64(len(us)))
	for i := range us {
		n += sizeUpdate(&us[i])
	}
	return n
}

func appendUpdates(dst []byte, us []UpdateMsg) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(us)))
	for i := range us {
		dst = appendUpdate(dst, &us[i])
	}
	return dst
}

func readUpdates(r *wire.Reader, us *[]UpdateMsg) {
	n := r.Count()
	if r.Err() != nil {
		return
	}
	if n == 0 {
		*us = nil
		return
	}
	if cap(*us) >= n {
		*us = (*us)[:n]
	} else {
		*us = make([]UpdateMsg, n)
	}
	for i := range *us {
		readUpdate(r, &(*us)[i])
	}
}

// ---------------------------------------------------------------------------
// PutRequest / PutResponse

func (m PutRequest) WireTag() byte { return tagPutRequest }
func (m PutRequest) WireSize() int {
	return wire.SizeString(m.Key) + wire.SizeBytes(m.Data) + sizeStrings(m.Tags) + wire.SizeString(m.From)
}
func (m PutRequest) AppendWire(dst []byte) []byte {
	dst = wire.AppendString(dst, m.Key)
	dst = wire.AppendBytes(dst, m.Data)
	dst = appendStrings(dst, m.Tags)
	return wire.AppendString(dst, m.From)
}
func (m *PutRequest) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	r.StringInto(&m.Key)
	m.Data = r.Bytes()
	readStrings(&r, &m.Tags)
	r.StringInto(&m.From)
	return r.Close()
}

func (m PutResponse) WireTag() byte { return tagPutResponse }
func (m PutResponse) WireSize() int { return sizeMeta(&m.Meta) }
func (m PutResponse) AppendWire(dst []byte) []byte {
	return appendMeta(dst, &m.Meta)
}
func (m *PutResponse) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	readMeta(&r, &m.Meta)
	return r.Close()
}

// ---------------------------------------------------------------------------
// GetRequest / GetVersionRequest / GetResponse

func (m GetRequest) WireTag() byte { return tagGetRequest }
func (m GetRequest) WireSize() int { return wire.SizeString(m.Key) }
func (m GetRequest) AppendWire(dst []byte) []byte {
	return wire.AppendString(dst, m.Key)
}
func (m *GetRequest) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	r.StringInto(&m.Key)
	return r.Close()
}

func (m GetVersionRequest) WireTag() byte { return tagGetVersionRequest }
func (m GetVersionRequest) WireSize() int {
	return wire.SizeString(m.Key) + wire.SizeVarint(int64(m.Version))
}
func (m GetVersionRequest) AppendWire(dst []byte) []byte {
	dst = wire.AppendString(dst, m.Key)
	return wire.AppendVarint(dst, int64(m.Version))
}
func (m *GetVersionRequest) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	r.StringInto(&m.Key)
	m.Version = object.Version(r.Varint())
	return r.Close()
}

func (m GetResponse) WireTag() byte { return tagGetResponse }
func (m GetResponse) WireSize() int {
	return wire.SizeBytes(m.Data) + sizeMeta(&m.Meta) + sizeStrings(m.HotReplicas)
}
func (m GetResponse) AppendWire(dst []byte) []byte {
	dst = wire.AppendBytes(dst, m.Data)
	dst = appendMeta(dst, &m.Meta)
	return appendStrings(dst, m.HotReplicas)
}
func (m *GetResponse) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	m.Data = r.Bytes()
	readMeta(&r, &m.Meta)
	readStrings(&r, &m.HotReplicas)
	return r.Close()
}

// ---------------------------------------------------------------------------
// RemoveRequest / RemoveVersionRequest

func (m RemoveRequest) WireTag() byte { return tagRemoveRequest }
func (m RemoveRequest) WireSize() int { return wire.SizeString(m.Key) }
func (m RemoveRequest) AppendWire(dst []byte) []byte {
	return wire.AppendString(dst, m.Key)
}
func (m *RemoveRequest) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	r.StringInto(&m.Key)
	return r.Close()
}

func (m RemoveVersionRequest) WireTag() byte { return tagRemoveVersionRequest }
func (m RemoveVersionRequest) WireSize() int {
	return wire.SizeString(m.Key) + wire.SizeVarint(int64(m.Version))
}
func (m RemoveVersionRequest) AppendWire(dst []byte) []byte {
	dst = wire.AppendString(dst, m.Key)
	return wire.AppendVarint(dst, int64(m.Version))
}
func (m *RemoveVersionRequest) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	r.StringInto(&m.Key)
	m.Version = object.Version(r.Varint())
	return r.Close()
}

// ---------------------------------------------------------------------------
// UpdateMsg / UpdateAck / batches

func (m UpdateMsg) WireTag() byte { return tagUpdateMsg }
func (m UpdateMsg) WireSize() int { return sizeUpdate(&m) }
func (m UpdateMsg) AppendWire(dst []byte) []byte {
	return appendUpdate(dst, &m)
}
func (m *UpdateMsg) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	readUpdate(&r, m)
	return r.Close()
}

func (m UpdateAck) WireTag() byte { return tagUpdateAck }
func (m UpdateAck) WireSize() int { return 1 }
func (m UpdateAck) AppendWire(dst []byte) []byte {
	return wire.AppendBool(dst, m.Accepted)
}
func (m *UpdateAck) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	m.Accepted = r.Bool()
	return r.Close()
}

func (m UpdateBatchRequest) WireTag() byte { return tagUpdateBatchRequest }
func (m UpdateBatchRequest) WireSize() int { return sizeUpdates(m.Updates) }
func (m UpdateBatchRequest) AppendWire(dst []byte) []byte {
	return appendUpdates(dst, m.Updates)
}
func (m *UpdateBatchRequest) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	readUpdates(&r, &m.Updates)
	return r.Close()
}

func (m UpdateBatchResponse) WireTag() byte { return tagUpdateBatchResponse }
func (m UpdateBatchResponse) WireSize() int {
	n := wire.SizeUvarint(uint64(len(m.Acks)))
	for i := range m.Acks {
		n += 1 + wire.SizeString(m.Acks[i].Err)
	}
	return n
}
func (m UpdateBatchResponse) AppendWire(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(m.Acks)))
	for i := range m.Acks {
		dst = wire.AppendBool(dst, m.Acks[i].Accepted)
		dst = wire.AppendString(dst, m.Acks[i].Err)
	}
	return dst
}
func (m *UpdateBatchResponse) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	n := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	if n == 0 {
		m.Acks = nil
		return r.Close()
	}
	if cap(m.Acks) >= n {
		m.Acks = m.Acks[:n]
	} else {
		m.Acks = make([]BatchAck, n)
	}
	for i := range m.Acks {
		m.Acks[i].Accepted = r.Bool()
		r.StringInto(&m.Acks[i].Err)
	}
	return r.Close()
}

// ---------------------------------------------------------------------------
// EC fragment fetch

func (m ECFragRequest) WireTag() byte { return tagECFragRequest }
func (m ECFragRequest) WireSize() int {
	return wire.SizeString(m.Key) + wire.SizeVarint(int64(m.Version))
}
func (m ECFragRequest) AppendWire(dst []byte) []byte {
	dst = wire.AppendString(dst, m.Key)
	return wire.AppendVarint(dst, int64(m.Version))
}
func (m *ECFragRequest) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	r.StringInto(&m.Key)
	m.Version = object.Version(r.Varint())
	return r.Close()
}

func (m ECFragResponse) WireTag() byte { return tagECFragResponse }
func (m ECFragResponse) WireSize() int {
	return sizeMeta(&m.Meta) + wire.SizeBytes(m.Data)
}
func (m ECFragResponse) AppendWire(dst []byte) []byte {
	dst = appendMeta(dst, &m.Meta)
	return wire.AppendBytes(dst, m.Data)
}
func (m *ECFragResponse) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	readMeta(&r, &m.Meta)
	m.Data = r.Bytes()
	return r.Close()
}

// ---------------------------------------------------------------------------
// Anti-entropy repair exchange

func (m RepairDigestRequest) WireTag() byte { return tagRepairDigestRequest }
func (m RepairDigestRequest) WireSize() int {
	return wire.SizeVarint(int64(m.Fanout)) + wire.SizeVarint(int64(m.Depth)) + sizeInts(m.Nodes)
}
func (m RepairDigestRequest) AppendWire(dst []byte) []byte {
	dst = wire.AppendVarint(dst, int64(m.Fanout))
	dst = wire.AppendVarint(dst, int64(m.Depth))
	return appendInts(dst, m.Nodes)
}
func (m *RepairDigestRequest) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	m.Fanout = int(r.Varint())
	m.Depth = int(r.Varint())
	readInts(&r, &m.Nodes)
	return r.Close()
}

func (m RepairDigestResponse) WireTag() byte { return tagRepairDigestResponse }
func (m RepairDigestResponse) WireSize() int {
	n := wire.SizeUvarint(uint64(len(m.Digests)))
	for _, d := range m.Digests {
		n += wire.SizeUvarint(d)
	}
	return n
}
func (m RepairDigestResponse) AppendWire(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(m.Digests)))
	for _, d := range m.Digests {
		dst = wire.AppendUvarint(dst, d)
	}
	return dst
}
func (m *RepairDigestResponse) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	n := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	if n == 0 {
		m.Digests = nil
		return r.Close()
	}
	if cap(m.Digests) >= n {
		m.Digests = m.Digests[:n]
	} else {
		m.Digests = make([]uint64, n)
	}
	for i := range m.Digests {
		m.Digests[i] = r.Uvarint()
	}
	return r.Close()
}

func (m RepairEntriesRequest) WireTag() byte { return tagRepairEntriesRequest }
func (m RepairEntriesRequest) WireSize() int {
	return wire.SizeVarint(int64(m.Fanout)) + wire.SizeVarint(int64(m.Depth)) + sizeInts(m.Leaves)
}
func (m RepairEntriesRequest) AppendWire(dst []byte) []byte {
	dst = wire.AppendVarint(dst, int64(m.Fanout))
	dst = wire.AppendVarint(dst, int64(m.Depth))
	return appendInts(dst, m.Leaves)
}
func (m *RepairEntriesRequest) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	m.Fanout = int(r.Varint())
	m.Depth = int(r.Varint())
	readInts(&r, &m.Leaves)
	return r.Close()
}

func (m RepairEntriesResponse) WireTag() byte { return tagRepairEntriesRespons }
func (m RepairEntriesResponse) WireSize() int {
	n := wire.SizeUvarint(uint64(len(m.Entries)))
	for i := range m.Entries {
		e := &m.Entries[i]
		n += wire.SizeString(e.Key) + wire.SizeVarint(e.Version) + wire.SizeVarint(e.Mtime) + wire.SizeString(e.Origin)
	}
	return n
}
func (m RepairEntriesResponse) AppendWire(dst []byte) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(m.Entries)))
	for i := range m.Entries {
		e := &m.Entries[i]
		dst = wire.AppendString(dst, e.Key)
		dst = wire.AppendVarint(dst, e.Version)
		dst = wire.AppendVarint(dst, e.Mtime)
		dst = wire.AppendString(dst, e.Origin)
	}
	return dst
}
func (m *RepairEntriesResponse) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	n := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	if n == 0 {
		m.Entries = nil
		return r.Close()
	}
	if cap(m.Entries) >= n {
		m.Entries = m.Entries[:n]
	} else {
		m.Entries = make([]repair.Entry, n)
	}
	for i := range m.Entries {
		e := &m.Entries[i]
		r.StringInto(&e.Key)
		e.Version = r.Varint()
		e.Mtime = r.Varint()
		r.StringInto(&e.Origin)
	}
	return r.Close()
}

func (m RepairPullRequest) WireTag() byte { return tagRepairPullRequest }
func (m RepairPullRequest) WireSize() int { return sizeStrings(m.Keys) }
func (m RepairPullRequest) AppendWire(dst []byte) []byte {
	return appendStrings(dst, m.Keys)
}
func (m *RepairPullRequest) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	readStrings(&r, &m.Keys)
	return r.Close()
}

func (m RepairPullResponse) WireTag() byte { return tagRepairPullResponse }
func (m RepairPullResponse) WireSize() int { return sizeUpdates(m.Updates) }
func (m RepairPullResponse) AppendWire(dst []byte) []byte {
	return appendUpdates(dst, m.Updates)
}
func (m *RepairPullResponse) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	readUpdates(&r, &m.Updates)
	return r.Close()
}

func (m RepairPushRequest) WireTag() byte { return tagRepairPushRequest }
func (m RepairPushRequest) WireSize() int { return sizeUpdates(m.Updates) }
func (m RepairPushRequest) AppendWire(dst []byte) []byte {
	return appendUpdates(dst, m.Updates)
}
func (m *RepairPushRequest) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	readUpdates(&r, &m.Updates)
	return r.Close()
}

func (m RepairPushResponse) WireTag() byte { return tagRepairPushResponse }
func (m RepairPushResponse) WireSize() int { return wire.SizeVarint(int64(m.Accepted)) }
func (m RepairPushResponse) AppendWire(dst []byte) []byte {
	return wire.AppendVarint(dst, int64(m.Accepted))
}
func (m *RepairPushResponse) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	m.Accepted = int(r.Varint())
	return r.Close()
}

// ---------------------------------------------------------------------------
// Empty (shared zero-size reply)

func (m Empty) WireTag() byte                { return tagEmpty }
func (m Empty) WireSize() int                { return 0 }
func (m Empty) AppendWire(dst []byte) []byte { return dst }
func (m *Empty) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	return r.Close()
}

// Compile-time interface checks: every hot message implements both sides.
var (
	_ wire.Unmarshaler = (*PutRequest)(nil)
	_ wire.Unmarshaler = (*PutResponse)(nil)
	_ wire.Unmarshaler = (*GetRequest)(nil)
	_ wire.Unmarshaler = (*GetResponse)(nil)
	_ wire.Unmarshaler = (*GetVersionRequest)(nil)
	_ wire.Unmarshaler = (*RemoveRequest)(nil)
	_ wire.Unmarshaler = (*RemoveVersionRequest)(nil)
	_ wire.Unmarshaler = (*UpdateMsg)(nil)
	_ wire.Unmarshaler = (*UpdateAck)(nil)
	_ wire.Unmarshaler = (*UpdateBatchRequest)(nil)
	_ wire.Unmarshaler = (*UpdateBatchResponse)(nil)
	_ wire.Unmarshaler = (*ECFragRequest)(nil)
	_ wire.Unmarshaler = (*ECFragResponse)(nil)
	_ wire.Unmarshaler = (*RepairDigestRequest)(nil)
	_ wire.Unmarshaler = (*RepairDigestResponse)(nil)
	_ wire.Unmarshaler = (*RepairEntriesRequest)(nil)
	_ wire.Unmarshaler = (*RepairEntriesResponse)(nil)
	_ wire.Unmarshaler = (*RepairPullRequest)(nil)
	_ wire.Unmarshaler = (*RepairPullResponse)(nil)
	_ wire.Unmarshaler = (*RepairPushRequest)(nil)
	_ wire.Unmarshaler = (*RepairPushResponse)(nil)
	_ wire.Unmarshaler = (*Empty)(nil)
)

package wiera

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/object"
	"repro/internal/repair"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wire"
)

// sampleMeta fills every Meta field, including the ones that are usually
// zero (EC layout, tags, flags), so round-trip tests cover the full walk.
func sampleMeta(key string) object.Meta {
	return object.Meta{
		Key:        key,
		Version:    7,
		Size:       4096,
		Dirty:      true,
		TierName:   "memory",
		Origin:     "node/us-west",
		CreatedAt:  time.Unix(1700000000, 111),
		ModifiedAt: time.Unix(1700000001, 222),
		AccessedAt: time.Unix(1700000002, 333),
		AccessCnt:  42,
		Tags:       []string{"hot", "pinned"},
		Compressed: true,
		Encrypted:  false,
		ECK:        4,
		ECM:        2,
		ECFrags:    []int{0, 3, 5},
	}
}

// hotMessages returns one populated sample of every wire-capable message,
// paired with a fresh zero destination of the same type.
func hotMessages() []struct {
	name string
	msg  wire.Unmarshaler
	zero func() wire.Unmarshaler
} {
	meta := sampleMeta("obj/a")
	upd := UpdateMsg{Meta: meta, Data: []byte("payload-1"), Forwarded: true}
	upd2 := UpdateMsg{Meta: sampleMeta("obj/b"), Data: nil}
	return []struct {
		name string
		msg  wire.Unmarshaler
		zero func() wire.Unmarshaler
	}{
		{"PutRequest", &PutRequest{Key: "k", Data: []byte("data"), Tags: []string{"a", "b"}, From: "n1"}, func() wire.Unmarshaler { return &PutRequest{} }},
		{"PutRequest/empty", &PutRequest{}, func() wire.Unmarshaler { return &PutRequest{} }},
		{"PutResponse", &PutResponse{Meta: meta}, func() wire.Unmarshaler { return &PutResponse{} }},
		{"GetRequest", &GetRequest{Key: "k"}, func() wire.Unmarshaler { return &GetRequest{} }},
		{"GetResponse", &GetResponse{Data: []byte("d"), Meta: meta, HotReplicas: []string{"n2", "n3"}}, func() wire.Unmarshaler { return &GetResponse{} }},
		{"GetVersionRequest", &GetVersionRequest{Key: "k", Version: 9}, func() wire.Unmarshaler { return &GetVersionRequest{} }},
		{"RemoveRequest", &RemoveRequest{Key: "k"}, func() wire.Unmarshaler { return &RemoveRequest{} }},
		{"RemoveVersionRequest", &RemoveVersionRequest{Key: "k", Version: 3}, func() wire.Unmarshaler { return &RemoveVersionRequest{} }},
		{"UpdateMsg", &upd, func() wire.Unmarshaler { return &UpdateMsg{} }},
		{"UpdateAck", &UpdateAck{Accepted: true}, func() wire.Unmarshaler { return &UpdateAck{} }},
		{"UpdateBatchRequest", &UpdateBatchRequest{Updates: []UpdateMsg{upd, upd2}}, func() wire.Unmarshaler { return &UpdateBatchRequest{} }},
		{"UpdateBatchRequest/empty", &UpdateBatchRequest{}, func() wire.Unmarshaler { return &UpdateBatchRequest{} }},
		{"UpdateBatchResponse", &UpdateBatchResponse{Acks: []BatchAck{{Accepted: true}, {Err: "lost LWW"}}}, func() wire.Unmarshaler { return &UpdateBatchResponse{} }},
		{"ECFragRequest", &ECFragRequest{Key: "k", Version: 5}, func() wire.Unmarshaler { return &ECFragRequest{} }},
		{"ECFragResponse", &ECFragResponse{Meta: meta, Data: []byte("frag")}, func() wire.Unmarshaler { return &ECFragResponse{} }},
		{"RepairDigestRequest", &RepairDigestRequest{Fanout: 4, Depth: 3, Nodes: []int{0, 1, 7}}, func() wire.Unmarshaler { return &RepairDigestRequest{} }},
		{"RepairDigestResponse", &RepairDigestResponse{Digests: []uint64{0, 1, 1 << 60}}, func() wire.Unmarshaler { return &RepairDigestResponse{} }},
		{"RepairEntriesRequest", &RepairEntriesRequest{Fanout: 2, Depth: 1, Leaves: []int{3}}, func() wire.Unmarshaler { return &RepairEntriesRequest{} }},
		{"RepairEntriesResponse", &RepairEntriesResponse{Entries: []repair.Entry{{Key: "k", Version: 2, Mtime: 12345, Origin: "n1"}}}, func() wire.Unmarshaler { return &RepairEntriesResponse{} }},
		{"RepairPullRequest", &RepairPullRequest{Keys: []string{"a", "b"}}, func() wire.Unmarshaler { return &RepairPullRequest{} }},
		{"RepairPullResponse", &RepairPullResponse{Updates: []UpdateMsg{upd}}, func() wire.Unmarshaler { return &RepairPullResponse{} }},
		{"RepairPushRequest", &RepairPushRequest{Updates: []UpdateMsg{upd, upd2}}, func() wire.Unmarshaler { return &RepairPushRequest{} }},
		{"RepairPushResponse", &RepairPushResponse{Accepted: 3}, func() wire.Unmarshaler { return &RepairPushResponse{} }},
		{"Empty", &Empty{}, func() wire.Unmarshaler { return &Empty{} }},
	}
}

// TestWireRoundTrip checks, for every hot message: the encoded frame is
// exactly header + WireSize bytes, decodes into an equal value, and
// re-encodes byte-exact.
func TestWireRoundTrip(t *testing.T) {
	for _, tc := range hotMessages() {
		t.Run(tc.name, func(t *testing.T) {
			frame := wire.Marshal(tc.msg)
			if want := wire.HeaderLen + tc.msg.WireSize(); len(frame) != want {
				t.Fatalf("frame is %d bytes, WireSize promises %d", len(frame), want)
			}
			out := tc.zero()
			if err := wire.Unmarshal(frame, out); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			again := wire.Marshal(out)
			if !bytes.Equal(frame, again) {
				t.Fatalf("re-encode differs:\n  first  %x\n  second %x", frame, again)
			}
		})
	}
}

// TestWireRoundTripThroughTransport runs the same round trip through
// transport.EncodeWith/Decode — the integration seam the RPC paths use —
// and checks the gob fallback decodes into the same value.
func TestWireRoundTripThroughTransport(t *testing.T) {
	for _, tc := range hotMessages() {
		t.Run(tc.name, func(t *testing.T) {
			bin, err := transport.EncodeWith(transport.CodecAuto, tc.msg)
			if err != nil {
				t.Fatal(err)
			}
			if !wire.Is(bin) {
				t.Fatal("CodecAuto did not produce a wire frame for a hot message")
			}
			gobbed, err := transport.EncodeWith(transport.CodecGob, tc.msg)
			if err != nil {
				t.Fatal(err)
			}
			if wire.Is(gobbed) {
				t.Fatal("CodecGob produced a wire frame")
			}
			fromBin, fromGob := tc.zero(), tc.zero()
			if err := transport.Decode(bin, fromBin); err != nil {
				t.Fatalf("decode binary: %v", err)
			}
			if err := transport.Decode(gobbed, fromGob); err != nil {
				t.Fatalf("decode gob: %v", err)
			}
			// Both decode paths must agree; compare via canonical re-encode
			// (DeepEqual trips over time.Time internals and nil-vs-empty).
			b1, b2 := wire.Marshal(fromBin), wire.Marshal(fromGob)
			if !bytes.Equal(b1, b2) {
				t.Fatalf("binary and gob decodes disagree:\n  wire %x\n  gob  %x", b1, b2)
			}
		})
	}
}

// TestWireTruncationAndCorruption: every strict prefix of every frame must
// return an error (never panic, never succeed), as must trailing garbage
// and an unknown version byte.
func TestWireTruncationAndCorruption(t *testing.T) {
	for _, tc := range hotMessages() {
		t.Run(tc.name, func(t *testing.T) {
			frame := wire.Marshal(tc.msg)
			for i := wire.HeaderLen; i < len(frame); i++ {
				if err := wire.Unmarshal(frame[:i:i], tc.zero()); err == nil {
					t.Fatalf("truncation at byte %d/%d decoded successfully", i, len(frame))
				}
			}
			trailing := append(append([]byte{}, frame...), 0x00)
			if err := wire.Unmarshal(trailing, tc.zero()); err == nil {
				t.Fatal("trailing byte not rejected")
			}
			if len(frame) > wire.HeaderLen {
				// Corrupt version byte.
				bad := append([]byte{}, frame...)
				bad[2] = 0x7E
				if err := transport.Decode(bad, tc.zero()); err == nil {
					t.Fatal("unknown frame version not rejected")
				}
			}
		})
	}
}

// TestDecodeWireFrameIntoNonWireType: a binary frame arriving at a decoder
// for a gob-only message type must error cleanly.
func TestDecodeWireFrameIntoNonWireType(t *testing.T) {
	frame := wire.Marshal(GetRequest{Key: "k"})
	var out VersionListRequest // gob-only type
	if err := transport.Decode(frame, &out); err == nil {
		t.Fatal("wire frame decoded into a non-wire type")
	}
}

// TestWireDecodeZeroCopy: a decoded payload must alias the frame, not a
// copy — the zero-copy contract the tier layer's copy-on-Put makes safe.
func TestWireDecodeZeroCopy(t *testing.T) {
	in := PutRequest{Key: "k", Data: bytes.Repeat([]byte{0xAA}, 256)}
	frame := wire.Marshal(in)
	var out PutRequest
	if err := wire.Unmarshal(frame, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Data) != 256 {
		t.Fatalf("data length %d", len(out.Data))
	}
	// Mutating the frame must show through the decoded slice: Data aliases
	// the frame rather than copying it.
	i := bytes.IndexByte(frame, 0xAA)
	if i < 0 {
		t.Fatal("payload bytes not found in frame")
	}
	frame[i] = 0x55
	if out.Data[0] != 0x55 {
		t.Fatal("decoded Data does not alias the frame buffer")
	}
}

// TestMixedCodecInterop is the rolling-upgrade scenario from the issue: a
// gob-only peer (old binary emulated by pinning CodecGob) and wire-enabled
// peers complete put/get/batch flush/repair/remove against each other with
// zero lost acked writes.
func TestMixedCodecInterop(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast, simnet.EUWest)
	c.startSrc(t, "mx", eventual3Src, map[string]string{"queueFlush": "10m"})
	west := c.node(t, "mx/us-west") // wire-enabled (CodecAuto default)
	east := c.node(t, "mx/us-east") // downgraded to gob below
	eu := c.node(t, "mx/eu-west")   // wire-enabled

	// Emulate a not-yet-upgraded peer: everything east sends is gob.
	east.codec = transport.CodecGob
	if west.codec != transport.CodecAuto || eu.codec != transport.CodecAuto {
		t.Fatal("expected CodecAuto default on upgraded nodes")
	}

	ctx := context.Background()
	const keys = 50

	// Wire node writes, batch fan-out ships binary frames to the gob peer
	// (which replies gob because its own codec is gob).
	for i := 0; i < keys; i++ {
		if _, err := west.Put(ctx, fmt.Sprintf("w%03d", i), []byte("from-west"), nil); err != nil {
			t.Fatal(err)
		}
	}
	west.FlushQueue()

	// Gob node writes, batch fan-out ships gob frames to wire peers.
	for i := 0; i < keys; i++ {
		if _, err := east.Put(ctx, fmt.Sprintf("e%03d", i), []byte("from-east"), nil); err != nil {
			t.Fatal(err)
		}
	}
	east.FlushQueue()

	// Zero lost acked writes: every node holds all 2*keys objects.
	for _, n := range []*Node{west, east, eu} {
		if got := n.local.Objects().Len(); got != 2*keys {
			t.Fatalf("%s holds %d keys, want %d", n.Name(), got, 2*keys)
		}
	}

	// Cross-codec reads, both directions.
	if data, _, err := east.Get(ctx, "w000"); err != nil || string(data) != "from-west" {
		t.Fatalf("gob node read of wire write: %q, %v", data, err)
	}
	if data, _, err := west.Get(ctx, "e000"); err != nil || string(data) != "from-east" {
		t.Fatalf("wire node read of gob write: %q, %v", data, err)
	}

	// Repair exchange across the codec boundary, both directions: digests,
	// leaf entries, pull, push.
	geo := repair.Geometry{Fanout: 4, Depth: 3}
	for _, dir := range []struct {
		name string
		peer rpcPeer
	}{
		{"wire->gob", rpcPeer{n: west, peer: east.Name()}},
		{"gob->wire", rpcPeer{n: east, peer: west.Name()}},
	} {
		if _, err := dir.peer.Digests(geo, []int{0}); err != nil {
			t.Fatalf("%s digests: %v", dir.name, err)
		}
		if _, err := dir.peer.LeafEntries(geo, []int{0, 1}); err != nil {
			t.Fatalf("%s leaf entries: %v", dir.name, err)
		}
		ups, err := dir.peer.Pull([]string{"w000", "e000"})
		if err != nil || len(ups) != 2 {
			t.Fatalf("%s pull: %d updates, %v", dir.name, len(ups), err)
		}
		meta := sampleMeta("r-" + dir.name)
		meta.ModifiedAt = c.clk.Now()
		n, err := dir.peer.Push([]repair.Update{{Meta: meta, Data: []byte("repair")}})
		if err != nil || n != 1 {
			t.Fatalf("%s push: accepted %d, %v", dir.name, n, err)
		}
	}

	// Remove fan-out across the boundary.
	if err := west.Remove(ctx, "w001"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := east.Get(ctx, "w001"); err == nil {
		t.Fatal("remove did not propagate from wire node to gob node")
	}
	if err := east.Remove(ctx, "e001"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := west.Get(ctx, "e001"); err == nil {
		t.Fatal("remove did not propagate from gob node to wire node")
	}
}

// TestGobOnlyClientAgainstWireNodes: a legacy client pinned to gob talks
// to wire-enabled nodes; nodes answer in the request's format.
func TestGobOnlyClientAgainstWireNodes(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast, simnet.EUWest)
	c.start(t, "gc", "EventualConsistency", nil)

	cl, err := NewClient(c.fabric, "legacy-client", simnet.USWest, "wiera", "gc")
	if err != nil {
		t.Fatal(err)
	}
	cl.SetCodec(transport.CodecGob)

	ctx := context.Background()
	if _, err := cl.Put(ctx, "k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	data, meta, err := cl.Get(ctx, "k1")
	if err != nil || string(data) != "v1" {
		t.Fatalf("get: %q, %v", data, err)
	}
	if _, _, err := cl.GetVersion(ctx, "k1", meta.Version); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove(ctx, "k1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Get(ctx, "k1"); err == nil {
		t.Fatal("get after remove succeeded")
	}
}

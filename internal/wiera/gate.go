package wiera

import (
	"errors"
	"sync"
)

// ErrChanging is returned to operations arriving while a policy change is
// in its prepare phase if the gate is shut down underneath them.
var ErrChanging = errors.New("wiera: node shutting down during policy change")

// opGate admits operations while open and blocks them during a policy
// change: freeze waits for in-flight operations to drain, then holds new
// arrivals until thaw. This implements Sec 3.3.2's "all new requests ...
// will be blocked and queued until the change takes effect".
type opGate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frozen bool
	active int
	dead   bool
}

func newOpGate() *opGate {
	g := &opGate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// enter admits one operation, blocking while the gate is frozen.
func (g *opGate) enter() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.frozen && !g.dead {
		g.cond.Wait()
	}
	if g.dead {
		return ErrChanging
	}
	g.active++
	return nil
}

// exit retires one operation.
func (g *opGate) exit() {
	g.mu.Lock()
	g.active--
	if g.active == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// freeze blocks new operations and waits until in-flight ones finish.
func (g *opGate) freeze() {
	g.mu.Lock()
	g.frozen = true
	for g.active > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// thaw reopens the gate.
func (g *opGate) thaw() {
	g.mu.Lock()
	g.frozen = false
	g.cond.Broadcast()
	g.mu.Unlock()
}

// kill unblocks all waiters with an error (shutdown).
func (g *opGate) kill() {
	g.mu.Lock()
	g.dead = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

package wiera

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// heatCluster starts a sharded single-region instance with heat tracking
// on. The heat interval is set far beyond the test's runtime so the
// background loop stays dormant and tests drive tick() deterministically.
func heatCluster(t *testing.T, id string, workers int, params map[string]string) (*cluster, *Client) {
	t.Helper()
	c := newCluster(t, simnet.USWest)
	p := map[string]string{
		"workers":   fmt.Sprintf("%d", workers),
		"heatTrack": "true", "heatInterval": "120h",
	}
	for k, v := range params {
		p[k] = v
	}
	c.start(t, id, "EventualConsistency", p)
	cli, err := NewClient(c.fabric, "cli-"+id, simnet.USWest, c.server.Name(), id)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return c, cli
}

// waitFor polls cond for up to five (real) seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// heatPair resolves key's owner and its single replica target in a
// two-worker instance.
func heatPair(t *testing.T, c *cluster, id, key string) (own, rep *Node) {
	t.Helper()
	rm, err := c.server.Ring(id)
	if err != nil {
		t.Fatal(err)
	}
	table := ring.NewTable(rm)
	shard := table.Owner(key)
	ownName := table.WorkerForShard(string(simnet.USWest), shard)
	repName := table.WorkerForShard(string(simnet.USWest), 1-shard)
	return c.node(t, ownName), c.node(t, repName)
}

func TestHotKeyPromotionServesFromReplica(t *testing.T) {
	c, cli := heatCluster(t, "hot", 2, map[string]string{
		"heatPromoteRate": "30", "heatDemoteRate": "10", "heatReplicas": "1",
	})
	ctx := context.Background()
	const key = "hot-key"
	if _, err := cli.Put(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	own, rep := heatPair(t, c, "hot", key)
	if own.heat == nil || rep.heat == nil {
		t.Fatal("heatTrack param did not enable the tracker")
	}

	// Before promotion the non-owner NACKs a direct get for the key.
	ep, err := c.fabric.NewEndpoint("heat-prober", simnet.USWest)
	if err != nil {
		t.Fatal(err)
	}
	defer c.fabric.Remove("heat-prober")
	payload, _ := transport.Encode(GetRequest{Key: key})
	if _, err := ep.Call(ctx, rep.name, MethodGet, payload); AsWrongShard(err) == nil {
		t.Fatalf("pre-promotion direct get at non-owner: err = %v, want wrong-shard", err)
	}

	// First tick only syncs the ring epoch (an epoch change retires
	// promotions); hammering afterwards builds the heat that the second
	// tick turns into a promotion.
	own.heat.tick()
	for i := 0; i < 100; i++ {
		if _, _, err := cli.Get(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	own.heat.tick()

	replicas := own.heat.replicasFor(key)
	if len(replicas) != 1 || replicas[0] != rep.name {
		t.Fatalf("replicasFor(%s) = %v, want [%s]", key, replicas, rep.name)
	}
	if hs := rep.heat.statsSnapshot(); hs.cached != 1 {
		t.Fatalf("replica cached = %d, want 1", hs.cached)
	}

	// The replica now answers the get from its hot cache — no NACK.
	raw, err := ep.Call(ctx, rep.name, MethodGet, payload)
	if err != nil {
		t.Fatalf("post-promotion direct get at replica: %v", err)
	}
	var resp GetResponse
	if err := transport.Decode(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if string(resp.Data) != "v1" {
		t.Fatalf("replica served %q, want v1", resp.Data)
	}
	if hs := rep.heat.statsSnapshot(); hs.hotGets != 1 {
		t.Fatalf("replica hotGets = %d, want 1", hs.hotGets)
	}

	// The owner's response advertises the replica set; the client caches it
	// and rotates subsequent reads across the copies.
	if _, _, err := cli.Get(ctx, key); err != nil {
		t.Fatal(err)
	}
	if hint := cli.hotHint(key); len(hint) != 1 || hint[0] != rep.name {
		t.Fatalf("client hint = %v, want [%s]", hint, rep.name)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := cli.Get(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	if hs := rep.heat.statsSnapshot(); hs.hotGets < 2 {
		t.Fatalf("rotation never reached the replica (hotGets = %d)", hs.hotGets)
	}
}

func TestHotKeyDemotionTombstonesReplica(t *testing.T) {
	c, cli := heatCluster(t, "cool", 2, map[string]string{
		"heatPromoteRate": "30", "heatDemoteRate": "10", "heatReplicas": "1",
	})
	ctx := context.Background()
	const key = "cooling-key"
	if _, err := cli.Put(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	own, rep := heatPair(t, c, "cool", key)
	own.heat.tick()
	for i := 0; i < 100; i++ {
		if _, _, err := cli.Get(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	own.heat.tick()
	if len(own.heat.replicasFor(key)) == 0 {
		t.Fatal("key never promoted")
	}
	if hint := cli.hotHint(key); hint == nil {
		// Learn the hint before the demotion so the stale-hint recovery
		// below actually has something to recover from.
		if _, _, err := cli.Get(ctx, key); err != nil {
			t.Fatal(err)
		}
	}

	// No further traffic: the decaying sketch cools the key below the
	// demote threshold within a few ticks.
	for i := 0; i < 6; i++ {
		own.heat.tick()
	}
	if got := own.heat.replicasFor(key); len(got) != 0 {
		t.Fatalf("key still promoted after cooling: %v", got)
	}
	if hs := own.heat.statsSnapshot(); hs.demotions != 1 {
		t.Fatalf("owner demotions = %d, want 1", hs.demotions)
	}
	if hs := rep.heat.statsSnapshot(); hs.cached != 0 {
		t.Fatalf("replica still caches %d hot keys after drop", hs.cached)
	}

	// A stale install racing the drop must not resurrect the replica.
	meta, err := own.local.Objects().Latest(key)
	if err != nil {
		t.Fatal(err)
	}
	rep.heat.handleInstall(HotInstallMsg{Meta: meta, Data: []byte("zombie"), Owner: own.name})
	if hs := rep.heat.statsSnapshot(); hs.cached != 0 {
		t.Fatal("tombstone did not block a racing install")
	}

	// The client's cached hint is now stale; the demoted replica NACKs,
	// the hint is dropped, and the read recovers via the owner.
	for i := 0; i < 4 && cli.hotHint(key) != nil; i++ {
		data, _, err := cli.Get(ctx, key)
		if err != nil {
			t.Fatalf("get with stale hint: %v", err)
		}
		if string(data) != "v1" {
			t.Fatalf("get with stale hint = %q", data)
		}
	}
	if hint := cli.hotHint(key); hint != nil {
		t.Fatalf("stale hint survived: %v", hint)
	}
}

func TestHotReplicaRefreshAfterPut(t *testing.T) {
	c, cli := heatCluster(t, "fresh", 2, map[string]string{
		"heatPromoteRate": "30", "heatDemoteRate": "10", "heatReplicas": "1",
	})
	ctx := context.Background()
	const key = "fresh-key"
	if _, err := cli.Put(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	own, rep := heatPair(t, c, "fresh", key)
	own.heat.tick()
	for i := 0; i < 100; i++ {
		if _, _, err := cli.Get(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	own.heat.tick()
	if len(own.heat.replicasFor(key)) == 0 {
		t.Fatal("key never promoted")
	}
	if _, err := cli.Put(ctx, key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// afterPut refreshes the replica asynchronously; poll the cache.
	waitFor(t, "hot replica refresh", func() bool {
		data, _, ok := rep.heat.serveHot(key)
		return ok && string(data) == "v2"
	})
}

func TestRebalanceInProgressTypedNACK(t *testing.T) {
	c, _, _ := shardedCluster(t, "busy", 2)
	c.server.mu.Lock()
	c.server.instances["busy"].rebalancing = true
	c.server.mu.Unlock()

	_, err := c.server.AddWorker("busy")
	nack := AsRebalanceInProgress(err)
	if nack == nil || nack.InstanceID != "busy" {
		t.Fatalf("AddWorker during rebalance: err = %v, want typed NACK", err)
	}
	if _, err := c.server.RemoveWorker("busy"); AsRebalanceInProgress(err) == nil {
		t.Fatalf("RemoveWorker during rebalance: err = %v, want typed NACK", err)
	}

	// The typed error must survive the transport's string flattening and
	// further wrapping, like WrongShardError does.
	flat := fmt.Errorf("wiera: retries exhausted: %w", errors.New(err.Error()))
	if got := AsRebalanceInProgress(flat); got == nil || got.InstanceID != "busy" {
		t.Fatalf("flattened round-trip lost the NACK: %v", flat)
	}
	if AsRebalanceInProgress(errors.New("some other failure")) != nil {
		t.Fatal("unrelated error misparsed as rebalance NACK")
	}

	// Clearing the guard lets the next membership change through.
	c.server.mu.Lock()
	c.server.instances["busy"].rebalancing = false
	c.server.mu.Unlock()
	if _, err := c.server.AddWorker("busy"); err != nil {
		t.Fatalf("AddWorker after settle: %v", err)
	}
}

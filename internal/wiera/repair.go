package wiera

import (
	"context"
	"sync"
	"time"

	"repro/internal/metastore"
	"repro/internal/object"
	"repro/internal/repair"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// repairManager owns a node's anti-entropy machinery: the hinted-handoff
// log, the background Merkle-sync daemon, read-repair scheduling, and the
// server side of the four repair RPCs. It adapts the node's Tiera instance
// and RPC fabric to the transport-agnostic interfaces in internal/repair.
type repairManager struct {
	n       *Node
	metrics *repair.Metrics
	hints   *repair.HintLog
	daemon  *repair.Daemon
	geo     repair.Geometry

	mu       sync.Mutex
	inflight map[string]bool // keys with a read repair already scheduled
}

// newRepairManager assembles the subsystem. Hints persist in a metastore
// next to the node's metadata when the node runs durable; otherwise they
// live in memory (a crash loses them, and the Merkle sync covers the gap).
func newRepairManager(n *Node, cfg NodeConfig) (*repairManager, error) {
	var be repair.Backend
	if cfg.MetaPath != "" {
		ms, err := metastore.Open(cfg.MetaPath + ".hints")
		if err != nil {
			return nil, err
		}
		be = ms
	} else {
		be = repair.NewMemBackend()
	}
	m := &repairManager{
		n:        n,
		metrics:  repair.NewMetrics(n.fabric.Metrics(), n.name, string(n.region)),
		geo:      repair.DefaultGeometry,
		inflight: make(map[string]bool),
	}
	hints, err := repair.OpenHintLog(be, m.metrics)
	if err != nil {
		be.Close()
		return nil, err
	}
	m.hints = hints
	m.daemon = repair.NewDaemon(n.clk, nodeStore{n}, hints, nodeCluster{n}, m.geo, cfg.AntiEntropyEvery, m.metrics)
	m.daemon.AttachJournal(n.fabric.Events(), n.name)
	if cfg.AntiEntropyEvery == 0 {
		// Default mode: hinted handoff and read repair only. Periodic Merkle
		// sync replicates whatever a peer lacks, which would override
		// placement decisions of policies that deliberately keep objects
		// local — so full sync is opt-in via an explicit period.
		m.daemon.DisableSync()
	}
	return m, nil
}

func (m *repairManager) start() { m.daemon.Start() }

func (m *repairManager) stop() {
	m.daemon.Stop()
	_ = m.hints.Close()
}

// addHint records an update that failed to reach peer; the daemon replays
// it once the peer answers pings again. Errors (a full disk under the hint
// store) are absorbed: the Merkle sync is the backstop.
func (m *repairManager) addHint(peer string, msg UpdateMsg) {
	_, _ = m.hints.Add(peer, repair.Update{Meta: msg.Meta, Data: msg.Data})
}

// scheduleKeyRepair asynchronously reconciles one key with every peer: pull
// their latest versions, keep the LWW winner locally, and push it back out.
// Triggered by a get that observed a stale version. Per-key in-flight
// dedup keeps a hot stale key from fanning out once per read.
func (m *repairManager) scheduleKeyRepair(key string) {
	m.mu.Lock()
	if m.inflight[key] {
		m.mu.Unlock()
		return
	}
	m.inflight[key] = true
	m.mu.Unlock()
	m.metrics.ReadRepairs.Inc()
	go func() {
		defer func() {
			m.mu.Lock()
			delete(m.inflight, key)
			m.mu.Unlock()
		}()
		m.repairKey(key)
	}()
}

func (m *repairManager) repairKey(key string) {
	store := nodeStore{m.n}
	for _, p := range m.n.Peers() {
		client := rpcPeer{n: m.n, peer: p.Name}
		updates, err := client.Pull([]string{key})
		if err != nil {
			continue
		}
		for _, u := range updates {
			if store.Apply(u) {
				m.metrics.KeysRepaired.Inc()
			}
		}
	}
	// Push the winning version back to peers still behind; LWW makes the
	// redundant deliveries no-ops.
	u, ok := store.Load(key)
	if !ok {
		return
	}
	for _, p := range m.n.Peers() {
		_, _ = (rpcPeer{n: m.n, peer: p.Name}).Push([]repair.Update{u})
	}
}

// absorb installs a version fetched from a peer into the local instance in
// the background (the local-miss read path: the next read of key is served
// locally).
func (m *repairManager) absorb(meta object.Meta, data []byte) {
	go func() {
		if ok, err := m.n.local.ApplyRemote(context.Background(), meta, data); err == nil && ok {
			m.metrics.KeysRepaired.Inc()
		}
	}()
}

// handle serves the four repair RPCs out of the node's dispatcher.
func (m *repairManager) handle(ctx context.Context, method string, payload []byte) ([]byte, error) {
	store := nodeStore{m.n}
	rc := m.n.replyCodec(payload)
	switch method {
	case MethodRepairDigest:
		var req RepairDigestRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		tree := repair.BuildTree(repair.Geometry{Fanout: req.Fanout, Depth: req.Depth}, store.Entries())
		digests, err := tree.Digests(req.Nodes)
		if err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, RepairDigestResponse{Digests: digests})
	case MethodRepairEntries:
		var req RepairEntriesRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		tree := repair.BuildTree(repair.Geometry{Fanout: req.Fanout, Depth: req.Depth}, store.Entries())
		entries, err := tree.LeafEntries(req.Leaves)
		if err != nil {
			return nil, err
		}
		return transport.EncodeWith(rc, RepairEntriesResponse{Entries: entries})
	case MethodRepairPull:
		var req RepairPullRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		var resp RepairPullResponse
		for _, key := range req.Keys {
			if u, ok := store.Load(key); ok {
				resp.Updates = append(resp.Updates, UpdateMsg{Meta: u.Meta, Data: u.Data})
			}
		}
		return transport.EncodeWith(rc, resp)
	case MethodRepairPush:
		var req RepairPushRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		accepted := 0
		for _, u := range req.Updates {
			// Erasure-coded versions go through the EC manager: a hint
			// replay carries exactly this member's fragment bundle and
			// installs verbatim, while a Merkle-sync push carries the
			// sender's bundle and triggers regeneration of our own
			// fragments from parity.
			if u.Meta.IsEC() {
				if m.n.ecm.applyRepair(repair.Update{Meta: u.Meta, Data: u.Data}) {
					accepted++
				}
				continue
			}
			// Ownership-aware apply: a push for a key this shard no longer
			// owns (a hint replayed after a rebalance) redirects to the
			// in-region owner instead of stranding a version here.
			if ok, err := m.n.shards.applyOrForward(ctx, u); err == nil && ok {
				accepted++
			}
		}
		return transport.EncodeWith(rc, RepairPushResponse{Accepted: accepted})
	default:
		return nil, errUnknownRepairMethod(method)
	}
}

type errUnknownRepairMethod string

func (e errUnknownRepairMethod) Error() string {
	return "wiera: unknown repair method " + string(e)
}

// nodeStore adapts the node's Tiera instance to repair.Store.
type nodeStore struct{ n *Node }

// Entries implements repair.Store over the local object index.
func (s nodeStore) Entries() []repair.Entry {
	objs := s.n.local.Objects()
	keys := objs.Keys()
	out := make([]repair.Entry, 0, len(keys))
	for _, key := range keys {
		meta, err := objs.Latest(key)
		if err != nil {
			continue
		}
		out = append(out, repair.EntryOf(meta))
	}
	return out
}

// Load implements repair.Store.
func (s nodeStore) Load(key string) (repair.Update, bool) {
	meta, err := s.n.local.Objects().Latest(key)
	if err != nil {
		return repair.Update{}, false
	}
	data, meta, err := s.n.local.GetVersion(context.Background(), key, meta.Version)
	if err != nil {
		return repair.Update{}, false
	}
	return repair.Update{Meta: meta, Data: data}, true
}

// Apply implements repair.Store through the LWW remote-apply path.
// Erasure-coded versions divert to the EC manager, which regenerates this
// member's own fragments from parity instead of installing whatever
// bundle the pushing peer holds.
func (s nodeStore) Apply(u repair.Update) bool {
	if u.Meta.IsEC() {
		return s.n.ecm.applyRepair(u)
	}
	ok, err := s.n.local.ApplyRemote(context.Background(), u.Meta, u.Data)
	return err == nil && ok
}

// nodeCluster adapts the node's membership view to repair.Cluster.
type nodeCluster struct{ n *Node }

// Peers implements repair.Cluster.
func (c nodeCluster) Peers() []string {
	peers := c.n.Peers()
	out := make([]string, len(peers))
	for i, p := range peers {
		out[i] = p.Name
	}
	return out
}

// Client implements repair.Cluster.
func (c nodeCluster) Client(peer string) repair.PeerClient { return rpcPeer{n: c.n, peer: peer} }

// Alive implements repair.Cluster with a ping round trip.
func (c nodeCluster) Alive(peer string) bool {
	payload, err := transport.Encode(PingMsg{})
	if err != nil {
		return false
	}
	_, err = c.n.ep.Call(context.Background(), peer, MethodPing, payload)
	return err == nil
}

// rpcPeer adapts one remote replica to repair.PeerClient over the fabric.
// Repair RPCs run outside any application trace, under spans of their own.
type rpcPeer struct {
	n    *Node
	peer string
}

func (p rpcPeer) call(method string, req, resp any) error {
	ctx, span := telemetry.StartSpan(context.Background(), method)
	span.SetAttr("node", p.n.name)
	span.SetAttr("peer", p.peer)
	defer span.End()
	payload, err := p.n.enc(req)
	if err != nil {
		return err
	}
	raw, err := p.n.ep.Call(ctx, p.peer, method, payload)
	if err != nil {
		span.SetError(err)
		return err
	}
	return transport.Decode(raw, resp)
}

// Digests implements repair.PeerClient.
func (p rpcPeer) Digests(geo repair.Geometry, nodes []int) ([]uint64, error) {
	var resp RepairDigestResponse
	err := p.call(MethodRepairDigest, RepairDigestRequest{Fanout: geo.Fanout, Depth: geo.Depth, Nodes: nodes}, &resp)
	return resp.Digests, err
}

// LeafEntries implements repair.PeerClient.
func (p rpcPeer) LeafEntries(geo repair.Geometry, leaves []int) ([]repair.Entry, error) {
	var resp RepairEntriesResponse
	err := p.call(MethodRepairEntries, RepairEntriesRequest{Fanout: geo.Fanout, Depth: geo.Depth, Leaves: leaves}, &resp)
	return resp.Entries, err
}

// Pull implements repair.PeerClient.
func (p rpcPeer) Pull(keys []string) ([]repair.Update, error) {
	var resp RepairPullResponse
	if err := p.call(MethodRepairPull, RepairPullRequest{Keys: keys}, &resp); err != nil {
		return nil, err
	}
	out := make([]repair.Update, len(resp.Updates))
	for i, u := range resp.Updates {
		out[i] = repair.Update{Meta: u.Meta, Data: u.Data}
	}
	return out, nil
}

// Push implements repair.PeerClient.
func (p rpcPeer) Push(updates []repair.Update) (int, error) {
	msgs := make([]UpdateMsg, len(updates))
	for i, u := range updates {
		msgs[i] = UpdateMsg{Meta: u.Meta, Data: u.Data}
	}
	var resp RepairPushResponse
	if err := p.call(MethodRepairPush, RepairPushRequest{Updates: msgs}, &resp); err != nil {
		return 0, err
	}
	return resp.Accepted, nil
}

// repairStats snapshots the repair counters for NodeStats; zero when the
// subsystem is disabled.
func (m *repairManager) statsSnapshot() (pending int, repaired, readRepairs, replayed int64) {
	if m == nil {
		return 0, 0, 0, 0
	}
	return m.hints.Pending(), m.metrics.KeysRepaired.Value(),
		m.metrics.ReadRepairs.Value(), m.metrics.HintsReplayed.Value()
}

// antiEntropyPeriod is the effective daemon period (0 when disabled).
func (m *repairManager) antiEntropyPeriod() time.Duration {
	if m == nil {
		return 0
	}
	return m.daemon.Period()
}

package wiera

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/policy"
)

const debugMonitor = false

// monitorWindow is the observation window of the requests monitor (the
// paper's experiment checks the put history of the last 30 seconds).
const monitorWindow = 30 * time.Second

// probePeriod stands in for "infinitely long" when probing which branch a
// threshold body would take, so period comparisons always pass.
const probePeriod = 1000000 * time.Hour

// changeCapture is a policy executor that records change_policy calls
// without performing them; used to probe which branch a threshold event
// body takes for the current measurements.
type changeCapture struct {
	what, to string
}

// Do implements policy.Executor.
func (c *changeCapture) Do(call *policy.ActionCall) error {
	if call.Name == "change_policy" {
		c.what, _ = call.StringArg("what")
		c.to, _ = call.StringArg("to")
	}
	return nil
}

// Assign implements policy.Executor.
func (c *changeCapture) Assign(string, policy.Value) error { return nil }

// DefaultMonitorWindow is how long a latency sample stays representative
// by default. The monitor evaluates against the window *maximum*, so that
// in eventual consistency — where application puts are fast by
// construction — the slow background replication fan-outs still register
// as "the network is degraded", preventing a premature switch back to
// strong consistency (paper Fig 7: the system returns to MultiPrimaries
// only once no delay is observed for the period threshold). The window
// also stretches any violation by up to its own width, so it should stay
// well under the policy's period threshold (a third or less).
const DefaultMonitorWindow = 10 * time.Second

// thresholdMonitor implements LatencyMonitoring (paper Sec 4.3): a
// dedicated evaluator signalled after each operation *and* each background
// replication fan-out. Semantics of the threshold.period attribute: the
// duration for which the policy body has continuously selected the same
// change target ("the period of the violation"). The monitor discovers the
// target by probing the body with an unbounded period, so the 800 ms
// threshold itself lives purely in the policy text.
type thresholdMonitor struct {
	n       *Node
	monitor string // threshold.type this monitor feeds ("put")
	window  time.Duration

	mu            sync.Mutex
	samples       []latencySample
	streakTarget  string
	streakStart   time.Time
	pendingChange bool
}

type latencySample struct {
	at time.Time
	d  time.Duration
}

func newThresholdMonitor(n *Node, monitor string, window time.Duration) *thresholdMonitor {
	if window <= 0 {
		window = DefaultMonitorWindow
	}
	return &thresholdMonitor{n: n, monitor: monitor, window: window, streakStart: n.clk.Now()}
}

// reset clears streak and pending state (called when a policy change
// commits).
func (m *thresholdMonitor) reset() {
	m.mu.Lock()
	m.streakTarget = ""
	m.streakStart = m.n.clk.Now()
	m.pendingChange = false
	m.mu.Unlock()
}

// observe feeds one latency sample (an operation or a replication
// fan-out) to every matching threshold event.
func (m *thresholdMonitor) observe(latency time.Duration) {
	now := m.n.clk.Now()
	m.mu.Lock()
	m.samples = append(m.samples, latencySample{at: now, d: latency})
	cut := now.Add(-m.window)
	i := 0
	for i < len(m.samples) && m.samples[i].at.Before(cut) {
		i++
	}
	m.samples = append(m.samples[:0], m.samples[i:]...)
	windowMax := windowMaxOf(m.samples)
	m.mu.Unlock()
	for _, ev := range m.n.controlEvents {
		if ev.Kind != policy.KindThreshold || ev.Monitor != m.monitor {
			continue
		}
		m.evaluate(ev, windowMax)
	}
}

// windowMaxOf returns the representative maximum of a sample window: the
// second-highest sample when three or more exist, otherwise the highest
// (zero for an empty window). A genuine network delay slows every operation
// and replication fan-out, while an isolated measurement spike (scheduling
// noise) produces one outlier and must not register as a violation — hence
// the second-max rule, which discards exactly one outlier once the window
// holds enough samples to tell the difference.
func windowMaxOf(samples []latencySample) time.Duration {
	var max1, max2 time.Duration
	for _, s := range samples {
		if s.d > max1 {
			max2, max1 = max1, s.d
		} else if s.d > max2 {
			max2 = s.d
		}
	}
	if len(samples) >= 3 {
		return max2
	}
	return max1
}

func (m *thresholdMonitor) evaluate(ev *policy.CompiledEvent, latency time.Duration) {
	now := m.n.clk.Now()
	// Probe: which target would this sample choose, ignoring period?
	probeEnv := policy.NewMapEnv()
	probeEnv.Set("threshold.type", policy.IdentVal(m.monitor))
	probeEnv.Set("threshold.latency", policy.DurationVal(latency))
	probeEnv.Set("threshold.period", policy.DurationVal(probePeriod))
	probe := &changeCapture{}
	if _, err := ev.Fire(probeEnv, probe); err != nil {
		return
	}

	m.mu.Lock()
	if probe.to != m.streakTarget {
		m.streakTarget = probe.to
		m.streakStart = now
	}
	streak := now.Sub(m.streakStart)
	pending := m.pendingChange
	m.mu.Unlock()

	if probe.to == "" || pending {
		return
	}
	// Real evaluation with the true violation period.
	realEnv := policy.NewMapEnv()
	realEnv.Set("threshold.type", policy.IdentVal(m.monitor))
	realEnv.Set("threshold.latency", policy.DurationVal(latency))
	realEnv.Set("threshold.period", policy.DurationVal(streak))
	capture := &changeCapture{}
	if _, err := ev.Fire(realEnv, capture); err != nil || capture.to == "" {
		return
	}
	if capture.what == "consistency" && capture.to == m.n.PolicyName() {
		return // already on the requested policy
	}
	m.mu.Lock()
	m.pendingChange = true
	m.mu.Unlock()
	if debugMonitor {
		fmt.Fprintf(os.Stderr, "[mon %s] FIRE at %s: windowMax=%v streak=%v target=%s\n",
			m.n.name, now.Format("15:04:05.000"), latency, streak, capture.to)
	}
	// Asynchronous: the request round-trips to the Wiera server, which
	// freezes this node's gate; blocking here would deadlock the
	// triggering operation (it still occupies the gate).
	go func() {
		if err := m.n.requestPolicyChangeVia(capture.what, capture.to, "latency"); err != nil {
			m.mu.Lock()
			m.pendingChange = false
			m.mu.Unlock()
		}
	}()
}

// requestsMonitor implements RequestsMonitoring (paper Sec 4.3 / Fig
// 5(b)): the primary tracks, over a sliding window, how many puts arrived
// directly from applications versus forwarded from each other instance.
// When an instance's forwarded count sustainedly exceeds the direct count,
// the ChangePrimary policy moves the primary there.
type requestsMonitor struct {
	n *Node

	mu            sync.Mutex
	direct        []time.Time
	forwarded     map[string][]time.Time
	streakSource  string
	streakStart   time.Time
	pendingChange bool
}

func newRequestsMonitor(n *Node) *requestsMonitor {
	return &requestsMonitor{n: n, forwarded: make(map[string][]time.Time), streakStart: n.clk.Now()}
}

// reset clears pending state (called when the primary changes).
func (m *requestsMonitor) reset() {
	m.mu.Lock()
	m.direct = nil
	m.forwarded = make(map[string][]time.Time)
	m.streakSource = ""
	m.streakStart = m.n.clk.Now()
	m.pendingChange = false
	m.mu.Unlock()
}

// observeDirect records a put received directly from an application.
func (m *requestsMonitor) observeDirect() {
	if !m.n.IsPrimary() {
		return
	}
	now := m.n.clk.Now()
	m.mu.Lock()
	m.direct = append(m.direct, now)
	m.pruneLocked(now)
	m.mu.Unlock()
	m.evaluate()
}

// observeForwarded records a put forwarded from another instance.
func (m *requestsMonitor) observeForwarded(src string) {
	if !m.n.IsPrimary() {
		return
	}
	now := m.n.clk.Now()
	m.mu.Lock()
	if src == "" {
		src = "unknown"
	}
	m.forwarded[src] = append(m.forwarded[src], now)
	m.pruneLocked(now)
	m.mu.Unlock()
	m.evaluate()
}

func (m *requestsMonitor) pruneLocked(now time.Time) {
	cut := now.Add(-monitorWindow)
	trim := func(ts []time.Time) []time.Time {
		i := 0
		for i < len(ts) && ts[i].Before(cut) {
			i++
		}
		return append(ts[:0], ts[i:]...)
	}
	m.direct = trim(m.direct)
	for src, ts := range m.forwarded {
		m.forwarded[src] = trim(ts)
		if len(m.forwarded[src]) == 0 {
			delete(m.forwarded, src)
		}
	}
}

// counts returns the max single-source forwarded count, that source, and
// the direct count within the window.
func (m *requestsMonitor) counts() (maxForwarded int, maxSource string, direct int) {
	now := m.n.clk.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked(now)
	for src, ts := range m.forwarded {
		if len(ts) > maxForwarded {
			maxForwarded = len(ts)
			maxSource = src
		}
	}
	return maxForwarded, maxSource, len(m.direct)
}

func (m *requestsMonitor) evaluate() {
	maxF, maxSrc, direct := m.counts()
	if maxSrc == "" {
		return
	}
	for _, ev := range m.n.controlEvents {
		if ev.Kind != policy.KindThreshold || ev.Monitor != "primary" {
			continue
		}
		m.evaluateEvent(ev, maxF, maxSrc, direct)
	}
}

func (m *requestsMonitor) evaluateEvent(ev *policy.CompiledEvent, maxF int, maxSrc string, direct int) {
	now := m.n.clk.Now()
	bind := func(env *policy.MapEnv, period time.Duration) {
		env.Set("threshold.type", policy.IdentVal("primary"))
		env.Set("threshold.forwarded", policy.NumberVal(float64(maxF)))
		env.Set("threshold.fromClients", policy.NumberVal(float64(direct)))
		env.Set("threshold.period", policy.DurationVal(period))
	}
	probeEnv := policy.NewMapEnv()
	bind(probeEnv, probePeriod)
	probe := &changeCapture{}
	if _, err := ev.Fire(probeEnv, probe); err != nil {
		return
	}
	streakKey := ""
	if probe.to != "" {
		streakKey = maxSrc // the condition holds in favor of maxSrc
	}
	m.mu.Lock()
	if streakKey != m.streakSource {
		m.streakSource = streakKey
		m.streakStart = now
	}
	streak := now.Sub(m.streakStart)
	pending := m.pendingChange
	m.mu.Unlock()
	if streakKey == "" || pending {
		return
	}

	realEnv := policy.NewMapEnv()
	bind(realEnv, streak)
	capture := &changeCapture{}
	if _, err := ev.Fire(realEnv, capture); err != nil || capture.to == "" {
		return
	}
	target := capture.to
	if target == "instance_forward_most" {
		target = maxSrc
	}
	if capture.what == "primary_instance" && target == m.n.name {
		return // already primary here
	}
	m.mu.Lock()
	m.pendingChange = true
	m.mu.Unlock()
	go func() {
		if err := m.n.requestPolicyChangeVia(capture.what, target, "primary"); err != nil {
			m.mu.Lock()
			m.pendingChange = false
			m.mu.Unlock()
		}
	}()
}

package wiera

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/transport"
)

// MethodCollectStats serves the aggregated per-instance view from the
// Wiera server.
const MethodCollectStats = "wiera.collectStats"

// MethodStats serves a node's workload counters (Sec 3.1's workload
// monitor: "users' locations (number of requests from each instance),
// access patterns, and object sizes").
const MethodStats = "wiera.stats"

// NodeStats is one node's workload summary.
type NodeStats struct {
	Name       string
	Region     string
	PolicyName string
	Primary    string
	IsPrimary  bool

	// Shard is the worker's shard index under the instance's ring (-1 when
	// the instance is unsharded); RingEpoch is the installed map's epoch (0
	// when unsharded).
	Shard     int
	RingEpoch int64

	Puts       int64
	Gets       int64
	PutMeanMs  float64
	PutP99Ms   float64
	GetMeanMs  float64
	GetP99Ms   float64
	StaleReads int64
	FreshReads int64
	QueueDepth int
	Keys       int
	BytesUsed  int64

	// Anti-entropy view (internal/repair); zero when repair is disabled.
	HintsPending  int
	HintsReplayed int64
	KeysRepaired  int64
	ReadRepairs   int64

	// Batched replication view (repl_batch_* counters); all zero when the
	// instance runs with maxBatchBytes: false.
	BatchFlushes       int64
	BatchChunks        int64
	BatchUpdates       int64
	BatchBytes         int64
	BatchEntryFailures int64

	// Erasure-coding view (ec_* counters); all zero unless the policy uses
	// the stripe action.
	ECPuts          int64
	ECReplPuts      int64
	ECReconstructs  int64
	ECFragsRepaired int64
	ECBytesSaved    int64
	ECGatherCancels int64

	// SLO view: the worst objective's slow-window burn rate from the last
	// engine evaluation, and whether any objective's alert is firing. Zero
	// when the node declares no objectives.
	SLOBurn   float64
	SLOFiring bool

	// Heat view (heat_* counters); all zero unless heatTrack is enabled.
	HeatTrackedKeys int
	HotKeys         int
	HotCached       int
	HeatPromotions  int64
	HeatDemotions   int64
	HotGets         int64
	HeatTop         []HeatKey

	// Tenancy view (tenant_* counters); nil unless the instance declares
	// tenants.
	Tenants []TenantStats
}

// statsLocal builds the node's own summary.
func (n *Node) statsLocal() NodeStats {
	var used int64
	for _, label := range n.local.TierOrder() {
		if t, ok := n.local.Tier(label); ok {
			used += t.Used()
		}
	}
	toMs := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pending, repaired, readRepairs, replayed := n.repair.statsSnapshot()
	ecPuts, ecRepl, ecRecon, ecFrags, ecSaved, ecCancels := n.ecm.statsSnapshot()
	hs := n.heat.statsSnapshot()
	var sloBurn float64
	var sloFiring bool
	for _, st := range n.sloEngine.Statuses() {
		if st.SlowBurn > sloBurn {
			sloBurn = st.SlowBurn
		}
		sloFiring = sloFiring || st.Firing
	}
	// A stats round trip doubles as the gauge refresh for wieractl ring:
	// CollectStats before a metrics dump leaves ring_keys/ring_bytes current.
	n.shards.updateOwnershipGauges()
	return NodeStats{
		Name:       n.name,
		Region:     string(n.region),
		PolicyName: n.PolicyName(),
		Primary:    n.Primary(),
		IsPrimary:  n.IsPrimary(),
		Shard:      n.shards.ownShard(),
		RingEpoch:  n.shards.ringEpoch(),
		Puts:       int64(n.PutLatency.Count()),
		Gets:       int64(n.GetLatency.Count()),
		PutMeanMs:  toMs(n.PutLatency.Mean()),
		PutP99Ms:   toMs(n.PutLatency.Percentile(99)),
		GetMeanMs:  toMs(n.GetLatency.Mean()),
		GetP99Ms:   toMs(n.GetLatency.Percentile(99)),
		StaleReads: n.StaleReads(),
		FreshReads: n.FreshReads(),
		QueueDepth: n.queue.Len(),
		Keys:       n.local.Objects().Len(),
		BytesUsed:  used,

		HintsPending:  pending,
		HintsReplayed: replayed,
		KeysRepaired:  repaired,
		ReadRepairs:   readRepairs,

		BatchFlushes:       n.batch.flushes.Value(),
		BatchChunks:        n.batch.chunks.Value(),
		BatchUpdates:       n.batch.updates.Value(),
		BatchBytes:         n.batch.bytes.Value(),
		BatchEntryFailures: n.batch.entryFailures.Value(),

		ECPuts:          ecPuts,
		ECReplPuts:      ecRepl,
		ECReconstructs:  ecRecon,
		ECFragsRepaired: ecFrags,
		ECBytesSaved:    ecSaved,
		ECGatherCancels: ecCancels,

		SLOBurn:   sloBurn,
		SLOFiring: sloFiring,

		HeatTrackedKeys: hs.tracked,
		HotKeys:         hs.hot,
		HotCached:       hs.cached,
		HeatPromotions:  hs.promotions,
		HeatDemotions:   hs.demotions,
		HotGets:         hs.hotGets,
		HeatTop:         hs.top,

		Tenants: n.tenants.snapshot(),
	}
}

// InstanceStats aggregates one Wiera instance's workload and network view —
// the inputs the paper's data placement manager would consume (automated
// placement itself is the paper's future work).
type InstanceStats struct {
	InstanceID string
	Policy     string
	Primary    string
	Nodes      []NodeStats
	// RTTms is the network monitor's inter-node latency matrix
	// ("latencies between instances", Sec 3.1), in milliseconds, keyed by
	// "from->to" node names.
	RTTms map[string]float64
}

// CollectStats queries every node of an instance and assembles the
// aggregated view (the WUI-side entry point of the network and workload
// monitors).
func (s *Server) CollectStats(instanceID string) (*InstanceStats, error) {
	s.mu.Lock()
	st, ok := s.instances[instanceID]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("wiera: no instance %q", instanceID)
	}
	nodes := append([]PeerInfo(nil), st.nodes...)
	out := &InstanceStats{
		InstanceID: instanceID, Policy: st.policyName, Primary: st.primary,
		RTTms: make(map[string]float64),
	}
	s.mu.Unlock()

	payload, err := transport.Encode(Empty{})
	if err != nil {
		return nil, err
	}
	for _, pi := range nodes {
		raw, err := s.ep.Call(context.Background(), pi.Name, MethodStats, payload)
		if err != nil {
			continue // dead nodes are the heartbeat's business
		}
		var ns NodeStats
		if err := transport.Decode(raw, &ns); err != nil {
			return nil, err
		}
		out.Nodes = append(out.Nodes, ns)
	}
	net := s.fabric.Network()
	for _, a := range nodes {
		for _, b := range nodes {
			if a.Name == b.Name {
				continue
			}
			key := a.Name + "->" + b.Name
			out.RTTms[key] = float64(net.RTT(a.Region, b.Region)) / float64(time.Millisecond)
		}
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Name < out.Nodes[j].Name })
	return out, nil
}

// Render prints the aggregated view as a text report.
func (is *InstanceStats) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instance %s  policy=%s  primary=%s\n", is.InstanceID, is.Policy, is.Primary)
	for _, n := range is.Nodes {
		role := ""
		if n.IsPrimary {
			role = " (primary)"
		}
		if n.Shard >= 0 {
			role += fmt.Sprintf(" [shard %d @ epoch %d]", n.Shard, n.RingEpoch)
		}
		fmt.Fprintf(&b, "  %-24s %-10s%s\n", n.Name, n.Region, role)
		fmt.Fprintf(&b, "    puts=%d mean=%.1fms p99=%.1fms  gets=%d mean=%.1fms p99=%.1fms\n",
			n.Puts, n.PutMeanMs, n.PutP99Ms, n.Gets, n.GetMeanMs, n.GetP99Ms)
		fmt.Fprintf(&b, "    keys=%d bytes=%d queued=%d stale/fresh=%d/%d\n",
			n.Keys, n.BytesUsed, n.QueueDepth, n.StaleReads, n.FreshReads)
		fmt.Fprintf(&b, "    repair: hints=%d replayed=%d repaired=%d readRepairs=%d\n",
			n.HintsPending, n.HintsReplayed, n.KeysRepaired, n.ReadRepairs)
		if n.BatchChunks > 0 {
			fmt.Fprintf(&b, "    batch: flushes=%d chunks=%d updates=%d bytes=%d entryFailures=%d\n",
				n.BatchFlushes, n.BatchChunks, n.BatchUpdates, n.BatchBytes, n.BatchEntryFailures)
		}
		if n.ECPuts > 0 || n.ECReplPuts > 0 {
			fmt.Fprintf(&b, "    ec: puts=%d replicated=%d reconstructs=%d fragsRepaired=%d bytesSaved=%d gatherCancels=%d\n",
				n.ECPuts, n.ECReplPuts, n.ECReconstructs, n.ECFragsRepaired, n.ECBytesSaved, n.ECGatherCancels)
		}
		if n.SLOBurn > 0 || n.SLOFiring {
			fmt.Fprintf(&b, "    slo: burn=%.2f firing=%v\n", n.SLOBurn, n.SLOFiring)
		}
		if n.HeatTrackedKeys > 0 || n.HotKeys > 0 || n.HotGets > 0 {
			fmt.Fprintf(&b, "    heat: tracked=%d hot=%d cached=%d promoted=%d demoted=%d hotGets=%d\n",
				n.HeatTrackedKeys, n.HotKeys, n.HotCached, n.HeatPromotions, n.HeatDemotions, n.HotGets)
		}
		for _, t := range n.Tenants {
			fmt.Fprintf(&b, "    tenant %-10s w=%d ops=%d throttled=%d in=%dB out=%dB queueP99=%.1fms putP99=%.1fms getP99=%.1fms\n",
				t.ID, t.Weight, t.Ops, t.Throttled, t.BytesIn, t.BytesOut, t.QueueP99Ms, t.PutP99Ms, t.GetP99Ms)
		}
	}
	if len(is.RTTms) > 0 {
		keys := make([]string, 0, len(is.RTTms))
		for k := range is.RTTms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("  network monitor (RTT ms):\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "    %-50s %.0f\n", k, is.RTTms[k])
		}
	}
	return b.String()
}

package wiera

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// fuzzTargets maps every hot message's tag to a fresh-destination
// constructor, so the fuzzer can route arbitrary frames to the right
// decoder the same way transport.Decode's callers do.
func fuzzTargets() map[byte]func() wire.Unmarshaler {
	targets := make(map[byte]func() wire.Unmarshaler)
	for _, tc := range hotMessages() {
		zero := tc.zero
		targets[tc.msg.WireTag()] = zero
	}
	return targets
}

// FuzzWireRoundTrip feeds arbitrary bytes to the wire decoder. Two
// invariants: decoding never panics (truncated/corrupt frames return
// errors), and any input that does decode is canonical-stable — encoding
// the decoded value and decoding/encoding again reproduces the exact same
// bytes. (The fuzzer can synthesize non-canonical inputs only by breaking
// strict varint/bool rules, which the decoder rejects, so byte-exactness
// is checked on the first re-encode generation.)
func FuzzWireRoundTrip(f *testing.F) {
	// Seed with every hot message's real encoding plus mutations the
	// decoder must reject.
	for _, tc := range hotMessages() {
		frame := wire.Marshal(tc.msg)
		f.Add(frame)
		if len(frame) > wire.HeaderLen {
			f.Add(frame[:len(frame)-1])
			f.Add(append(append([]byte{}, frame...), 0x00))
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xBD})
	f.Add([]byte{0xBD, 0x57, 0x01})
	f.Add([]byte{0xBD, 0x57, 0xFF, 0x01})

	targets := fuzzTargets()
	f.Fuzz(func(t *testing.T, data []byte) {
		if !wire.Is(data) {
			// Non-wire inputs must be identified as such, not crash.
			for _, zero := range targets {
				if err := wire.Unmarshal(data, zero()); err == nil {
					t.Fatalf("non-wire input decoded: %x", data)
				}
			}
			return
		}
		zero, ok := targets[data[3]]
		if !ok {
			// Unknown tag: every decoder must reject the frame.
			for _, z := range targets {
				if err := wire.Unmarshal(data, z()); err == nil {
					t.Fatalf("frame with unknown tag 0x%02x decoded", data[3])
				}
			}
			return
		}
		msg := zero()
		if err := wire.Unmarshal(data, msg); err != nil {
			return // rejected cleanly — fine
		}
		// Round-trip stability: decode(marshal(decode(data))) re-encodes
		// byte-exact.
		b1 := wire.Marshal(msg)
		msg2 := zero()
		if err := wire.Unmarshal(b1, msg2); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v\ninput: %x\nre-encoded: %x", err, data, b1)
		}
		b2 := wire.Marshal(msg2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("unstable round trip:\ninput: %x\ngen1:  %x\ngen2:  %x", data, b1, b2)
		}
		// The decoder is strict (canonical varints, 0/1 bools, exact
		// trailing check), so accepted input must itself be canonical.
		if !bytes.Equal(data, b1) {
			t.Fatalf("accepted non-canonical frame:\ninput: %x\ngen1:  %x", data, b1)
		}
	})
}

package wiera

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ring"
)

// TestMembershipChurnProperties is the elasticity property test: 20
// alternating AddWorker/RemoveWorker operations under concurrent writers
// must (1) keep every acked write readable, (2) move no more than ~1/N of
// the keyspace per membership change, and (3) leave the final ring's
// keyspace shares within 10% of the mean.
func TestMembershipChurnProperties(t *testing.T) {
	const (
		preKeys   = 210 // divisible by the writer count: disjoint partitions
		writers   = 3
		ops       = 20
		moveSlack = 1.6 // vnode placement is statistical; 1/N is the expectation
	)
	c, cli, _ := shardedCluster(t, "churn", 3)
	ctx := context.Background()
	for i := 0; i < preKeys; i++ {
		key := fmt.Sprintf("pre-%03d", i)
		if _, err := cli.Put(ctx, key, []byte("v1:"+key)); err != nil {
			t.Fatal(err)
		}
	}

	// Writers keep updating throughout all 20 membership changes; every
	// acked write must survive to the final audit. Each writer owns a
	// disjoint key partition so "last acked value" is well-defined per key.
	var acked sync.Map // key -> last acked value
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				key := fmt.Sprintf("pre-%03d", w+writers*(i%(preKeys/writers)))
				val := fmt.Sprintf("v2:%s:%d:%d", key, w, i)
				if _, err := cli.Put(ctx, key, []byte(val)); err == nil {
					acked.Store(key, val)
				}
			}
		}(w)
	}

	for op := 0; op < ops; op++ {
		rm, err := c.server.Ring("churn")
		if err != nil {
			t.Fatal(err)
		}
		before := rm.Shards()
		var moved int
		var after int
		if op%2 == 0 {
			moved, err = c.server.AddWorker("churn")
			after = before + 1
		} else {
			moved, err = c.server.RemoveWorker("churn")
			after = before - 1
		}
		if err != nil {
			t.Fatalf("op %d (shards %d): %v", op, before, err)
		}
		// A membership change must not reshuffle the world: consistent
		// hashing bounds movement near 1/N of the stored keys — joins move
		// keys INTO the new shard (1/after), drains move the leaving
		// shard's share OUT (1/before).
		denom := after
		if moved > 0 && op%2 == 1 {
			denom = before
		}
		if limit := int(moveSlack * float64(preKeys) / float64(denom)); moved > limit {
			t.Fatalf("op %d moved %d keys (shards %d->%d), limit %d", op, moved, before, after, limit)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Final ring balance, measured over the keyspace itself (sampled keys
	// against the final table) so the check is about placement, not about
	// which keys this test happened to write.
	rm, err := c.server.Ring("churn")
	if err != nil {
		t.Fatal(err)
	}
	if rm.Shards() != 3 {
		t.Fatalf("final shards = %d, want 3 after %d alternating ops", rm.Shards(), ops)
	}
	table := ring.NewTable(rm)
	const samples = 20000
	counts := make([]int, rm.Shards())
	for i := 0; i < samples; i++ {
		counts[table.Owner(fmt.Sprintf("sample-%05d", i))]++
	}
	mean := float64(samples) / float64(rm.Shards())
	for shard, n := range counts {
		if imb := (float64(n) - mean) / mean; imb > 0.10 {
			t.Fatalf("shard %d owns %.1f%% above the mean (counts %v)", shard, imb*100, counts)
		}
	}

	// Zero lost acked writes: every key is readable and holds at least the
	// last value its writer saw acknowledged.
	for i := 0; i < preKeys; i++ {
		key := fmt.Sprintf("pre-%03d", i)
		data, _, err := cli.Get(ctx, key)
		if err != nil {
			t.Fatalf("lost key %s after churn: %v", key, err)
		}
		if want, ok := acked.Load(key); ok && string(data) != want.(string) {
			t.Fatalf("key %s = %q, want last acked %q", key, data, want)
		}
	}
	// Every surviving worker owns a share of the keyspace.
	for _, region := range rm.Regions() {
		for _, name := range rm.Workers[region] {
			if c.node(t, name).local.Objects().Len() == 0 {
				t.Fatalf("worker %s owns no keys after churn", name)
			}
		}
	}
}

package wiera

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/object"
	"repro/internal/repair"
	"repro/internal/simnet"
)

// eventual2Src is a two-region eventual-consistency policy (the builtin
// EventualConsistency declares only one region; anti-entropy needs peers).
const eventual2Src = `
Wiera EventualTwoRegions {
	Region1 = {name: LowLatencyInstance, region: us-west,
		tier1 = {name: memory, size: 5G}};
	Region2 = {name: LowLatencyInstance, region: us-east,
		tier1 = {name: memory, size: 5G}};
	event(insert.into) : response {
		store(what: insert.object, to: local_instance);
		queue(what: insert.object, to: all_regions);
	}
}`

// entrySet snapshots a node's (key -> version/mtime/origin) view through
// the same summary the repair subsystem syncs.
func entrySet(n *Node) map[string]repair.Entry {
	out := make(map[string]repair.Entry)
	for _, e := range (nodeStore{n}).Entries() {
		out[e.Key] = e
	}
	return out
}

// waitConverged polls until both nodes hold identical version sets.
func waitConverged(t *testing.T, a, b *Node, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		ea, eb := entrySet(a), entrySet(b)
		if len(ea) == len(eb) {
			same := true
			for k, e := range ea {
				if eb[k] != e {
					same = false
					break
				}
			}
			if same && len(ea) > 0 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas did not converge: %s has %d keys, %s has %d",
				a.Name(), len(entrySet(a)), b.Name(), len(entrySet(b)))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFlushFailureBecomesHintThenReplays(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	nodes := c.startSrc(t, "ev", eventual2Src, map[string]string{"queueFlush": "100ms"})
	if len(nodes) != 2 {
		t.Fatalf("nodes = %v", nodes)
	}
	west := c.node(t, "ev/us-west")
	east := c.node(t, "ev/us-east")

	c.net.Partition(simnet.USWest, simnet.USEast)
	if _, err := west.Put(context.Background(), "k1", []byte("v1"), nil); err != nil {
		t.Fatal(err)
	}
	// Drive the flush deterministically: delivery to the partitioned east
	// fails, and the update must land in the hint log, not vanish.
	west.queue.flushNow()
	if west.queue.Len() != 0 {
		t.Fatalf("queue not drained: %d", west.queue.Len())
	}
	if got := west.repair.hints.PendingFor(east.Name()); got != 1 {
		t.Fatalf("hints pending for east = %d, want 1", got)
	}

	c.net.Heal(simnet.USWest, simnet.USEast)
	west.repair.daemon.RunOnce()
	if got := west.repair.hints.Pending(); got != 0 {
		t.Fatalf("hints still pending after heal: %d", got)
	}
	if _, err := east.local.Objects().Latest("k1"); err != nil {
		t.Fatal("east never received the hinted update")
	}
	waitConverged(t, west, east, 2*time.Second)
}

func TestCrashedPeerMidFlushDoesNotLoseUpdate(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.startSrc(t, "cr", eventual2Src, map[string]string{"queueFlush": "100ms"})
	west := c.node(t, "cr/us-west")
	east := c.node(t, "cr/us-east")

	if _, err := west.Put(context.Background(), "k1", []byte("v1"), nil); err != nil {
		t.Fatal(err)
	}
	// Kill the peer while its update is still queued, then flush.
	east.Crash()
	west.queue.flushNow()
	if got := west.repair.hints.PendingFor("cr/us-east"); got != 1 {
		t.Fatalf("hints pending for crashed east = %d, want 1", got)
	}

	// The control plane respawns the replica under a new name and
	// bootstraps it; the update must surface there.
	c.server.HeartbeatOnce()
	respawned := c.node(t, "cr/us-east#2")
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := respawned.local.Objects().Latest("k1"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("respawned replica never received k1")
		}
		time.Sleep(time.Millisecond)
	}
	// Hints for the dead name are garbage-collected once the daemon sees
	// the new membership.
	west.repair.daemon.RunOnce()
	if got := west.repair.hints.PendingFor("cr/us-east"); got != 0 {
		t.Fatalf("hints for departed peer not dropped: %d", got)
	}
	waitConverged(t, west, respawned, 2*time.Second)
}

func TestQueueSupersedeKeepsNewestAndBoundsOrder(t *testing.T) {
	c := newCluster(t, simnet.USWest)
	c.start(t, "q", "EventualConsistency", map[string]string{"queueFlush": "10m"})
	n := c.node(t, "q/us-west")
	q := n.queue

	now := time.Now()
	mk := func(ver int64) UpdateMsg {
		return UpdateMsg{Meta: object.Meta{Key: "hot", Version: object.Version(ver),
			ModifiedAt: now.Add(time.Duration(ver)), Origin: n.Name()}}
	}
	q.enqueue(mk(5))
	// A re-enqueued older version (failed-flush retry racing a fresh put)
	// must not clobber the newer queued one.
	q.enqueue(mk(3))
	q.mu.Lock()
	got := q.pending["hot"].Meta.Version
	q.mu.Unlock()
	if got != 5 {
		t.Fatalf("queued version = %d, want 5 (older re-enqueue clobbered newer)", got)
	}
	// A hot key updated in a loop keeps the FIFO bounded at one slot.
	for v := int64(6); v < 1000; v++ {
		q.enqueue(mk(v))
	}
	q.mu.Lock()
	orderLen := len(q.order)
	q.mu.Unlock()
	if orderLen != 1 || q.Len() != 1 {
		t.Fatalf("order=%d pending=%d, want 1/1 for a single hot key", orderLen, q.Len())
	}
}

func TestQueueReenqueuesWhenRepairDisabled(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.startSrc(t, "nr", eventual2Src, map[string]string{
		"queueFlush": "10m", "antiEntropy": "false"})
	west := c.node(t, "nr/us-west")
	east := c.node(t, "nr/us-east")
	if west.repair != nil {
		t.Fatal("antiEntropy=false must disable the repair subsystem")
	}

	c.net.Partition(simnet.USWest, simnet.USEast)
	if _, err := west.Put(context.Background(), "k1", []byte("v1"), nil); err != nil {
		t.Fatal(err)
	}
	west.queue.flushNow()
	if west.queue.Len() != 1 {
		t.Fatalf("undeliverable update not re-enqueued: queue len %d", west.queue.Len())
	}
	c.net.Heal(simnet.USWest, simnet.USEast)
	west.queue.flushNow()
	if west.queue.Len() != 0 {
		t.Fatalf("queue not drained after heal: %d", west.queue.Len())
	}
	if _, err := east.local.Objects().Latest("k1"); err != nil {
		t.Fatal("east missing k1 after retried flush")
	}
}

func TestPartitionHealConvergenceEventual(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.startSrc(t, "conv", eventual2Src, map[string]string{
		"queueFlush": "100ms", "antiEntropy": "500ms"})
	west := c.node(t, "conv/us-west")
	east := c.node(t, "conv/us-east")
	ctx := context.Background()

	// Baseline keys reach both replicas.
	for i := 0; i < 10; i++ {
		if _, err := west.Put(ctx, fmt.Sprintf("base-%d", i), []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, west, east, 5*time.Second)

	// Writes on both sides of a partition: queue flushes fail peerward.
	c.net.Partition(simnet.USWest, simnet.USEast)
	for i := 0; i < 10; i++ {
		if _, err := west.Put(ctx, fmt.Sprintf("west-%d", i), []byte("w"), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := east.Put(ctx, fmt.Sprintf("east-%d", i), []byte("e"), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Conflicting writes to the same key on both sides.
	if _, err := west.Put(ctx, "both", []byte("from-west"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := east.Put(ctx, "both", []byte("from-east"), nil); err != nil {
		t.Fatal(err)
	}
	west.queue.flushNow()
	east.queue.flushNow()

	c.net.Heal(simnet.USWest, simnet.USEast)
	// One anti-entropy period (500ms clock / factor 2000) is microseconds
	// of real time; the 5s real deadline is many periods.
	waitConverged(t, west, east, 5*time.Second)

	// Zero lost acknowledged writes: every acked key is on both replicas.
	for i := 0; i < 10; i++ {
		for _, key := range []string{fmt.Sprintf("west-%d", i), fmt.Sprintf("east-%d", i)} {
			if _, err := west.local.Objects().Latest(key); err != nil {
				t.Fatalf("west missing acked key %s", key)
			}
			if _, err := east.local.Objects().Latest(key); err != nil {
				t.Fatalf("east missing acked key %s", key)
			}
		}
	}
}

func TestPartitionHealConvergencePrimaryBackup(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.start(t, "pb", "PrimaryBackupConsistency", map[string]string{"antiEntropy": "500ms"})
	west := c.node(t, "pb/us-west") // primary
	east := c.node(t, "pb/us-east")
	ctx := context.Background()

	if !west.IsPrimary() {
		t.Fatalf("primary = %q", west.Primary())
	}
	for i := 0; i < 5; i++ {
		if _, err := west.Put(ctx, fmt.Sprintf("base-%d", i), []byte("v"), nil); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, west, east, 5*time.Second)

	c.net.Partition(simnet.USWest, simnet.USEast)
	// Primary-side puts store locally but fail the synchronous copy; the
	// failed copy must be captured as a hint for the backup.
	for i := 0; i < 5; i++ {
		_, _ = west.Put(ctx, fmt.Sprintf("part-%d", i), []byte("w"), nil)
	}
	if got := west.repair.hints.PendingFor(east.Name()); got == 0 {
		t.Fatal("failed primary-backup copies recorded no hints")
	}

	c.net.Heal(simnet.USWest, simnet.USEast)
	waitConverged(t, west, east, 5*time.Second)
	for i := 0; i < 5; i++ {
		if _, err := east.local.Objects().Latest(fmt.Sprintf("part-%d", i)); err != nil {
			t.Fatalf("east missing partition-era key part-%d", i)
		}
	}
}

func TestStaleReadSchedulesReadRepair(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	// Long flush and anti-entropy periods isolate the read-repair path.
	c.startSrc(t, "rr", eventual2Src, map[string]string{
		"queueFlush": "4h", "antiEntropy": "4h"})
	west := c.node(t, "rr/us-west")
	east := c.node(t, "rr/us-east")
	ctx := context.Background()

	if _, err := west.Put(ctx, "k", []byte("v1"), nil); err != nil {
		t.Fatal(err)
	}
	west.queue.flushNow() // both replicas at version 1
	if _, err := west.Put(ctx, "k", []byte("v2"), nil); err != nil {
		t.Fatal(err) // version 2 only on west; east is now stale
	}

	data, meta, err := east.Get(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v1" || meta.Version != 1 {
		t.Fatalf("expected the stale v1 read, got %q v%d", data, meta.Version)
	}
	if east.StaleReads() != 1 {
		t.Fatalf("stale reads = %d, want 1", east.StaleReads())
	}
	// The stale read schedules an async repair that pulls v2 from west.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if m, err := east.local.Objects().Latest("k"); err == nil && m.Version == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("read repair never brought east to version 2")
		}
		time.Sleep(time.Millisecond)
	}
	if got := east.repair.metrics.ReadRepairs.Value(); got < 1 {
		t.Fatalf("repair_read_repairs_total = %d, want >= 1", got)
	}
}

func TestLocalMissGetAbsorbsVersion(t *testing.T) {
	c := newCluster(t, simnet.USWest, simnet.USEast)
	c.startSrc(t, "lm", eventual2Src, map[string]string{
		"queueFlush": "4h", "antiEntropy": "4h"})
	west := c.node(t, "lm/us-west")
	east := c.node(t, "lm/us-east")
	ctx := context.Background()

	if _, err := west.Put(ctx, "k", []byte("v1"), nil); err != nil {
		t.Fatal(err)
	}
	// East has never seen k: the get is served from west and the fetched
	// version is installed locally in the background.
	data, _, err := east.Get(ctx, "k")
	if err != nil || string(data) != "v1" {
		t.Fatalf("get = %q, %v", data, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := east.local.Objects().Latest("k"); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("fetched version was not absorbed locally")
		}
		time.Sleep(time.Millisecond)
	}
}

package wiera

import (
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/policy"
)

func TestWindowMaxOf(t *testing.T) {
	s := func(ds ...time.Duration) []latencySample {
		out := make([]latencySample, len(ds))
		for i, d := range ds {
			out[i] = latencySample{d: d}
		}
		return out
	}
	cases := []struct {
		name    string
		samples []latencySample
		want    time.Duration
	}{
		// Empty window: no violation signal at all.
		{"empty", nil, 0},
		// With one or two samples there is no way to tell an outlier from a
		// trend, so the highest wins.
		{"single", s(700 * time.Millisecond), 700 * time.Millisecond},
		{"two", s(100*time.Millisecond, 900*time.Millisecond), 900 * time.Millisecond},
		// Three or more: the second-highest discards exactly one outlier.
		{"three-outlier", s(10*time.Millisecond, 20*time.Millisecond, 5*time.Second), 20 * time.Millisecond},
		{"three-degraded", s(900*time.Millisecond, 950*time.Millisecond, 5*time.Second), 950 * time.Millisecond},
		{"order-independent", s(5*time.Second, 20*time.Millisecond, 10*time.Millisecond), 20 * time.Millisecond},
		{"ties", s(time.Second, time.Second, time.Second), time.Second},
		{"zeros", s(0, 0, 0), 0},
	}
	for _, c := range cases {
		if got := windowMaxOf(c.samples); got != c.want {
			t.Errorf("%s: windowMaxOf = %v, want %v", c.name, got, c.want)
		}
	}
}

// monitorFixture builds a thresholdMonitor over a bare node with a sim
// clock and the DynamicConsistency control events compiled in. policyName is
// set to the policy the slow branch targets, so real evaluations early-return
// (already on the requested policy) instead of issuing an RPC — the fixture
// has no transport.
func monitorFixture(t *testing.T, window time.Duration) (*thresholdMonitor, *clock.Sim) {
	t.Helper()
	spec, err := policy.Builtin("DynamicConsistency")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := policy.Compile(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim := clock.NewSim(time.Time{})
	n := &Node{clk: sim, policyName: "EventualConsistency"}
	n.controlEvents = prog.ByKind(policy.KindThreshold)
	return newThresholdMonitor(n, "put", window), sim
}

func TestThresholdMonitorEmptyWindowNoStreak(t *testing.T) {
	m, _ := monitorFixture(t, 10*time.Second)
	// No samples observed: nothing may have set a streak target.
	m.mu.Lock()
	target := m.streakTarget
	m.mu.Unlock()
	if target != "" {
		t.Fatalf("streak target %q before any sample", target)
	}
}

func TestThresholdMonitorSecondMaxGatesStreak(t *testing.T) {
	m, sim := monitorFixture(t, 10*time.Second)
	// One violating sample among fast ones: with >= 3 samples the second-max
	// rule discards the outlier, so the slow branch must not become the
	// streak target.
	m.observe(10 * time.Millisecond)
	sim.Advance(100 * time.Millisecond)
	m.observe(20 * time.Millisecond)
	sim.Advance(100 * time.Millisecond)
	m.observe(5 * time.Second) // isolated spike
	m.mu.Lock()
	target := m.streakTarget
	m.mu.Unlock()
	if target == "EventualConsistency" {
		t.Fatal("isolated spike set the violation streak (second-max rule broken)")
	}
	// A second slow sample makes it a trend: second-max is now violating.
	sim.Advance(100 * time.Millisecond)
	m.observe(4 * time.Second)
	m.mu.Lock()
	target = m.streakTarget
	m.mu.Unlock()
	if target != "EventualConsistency" {
		t.Fatalf("sustained violation streak target = %q, want EventualConsistency", target)
	}
}

func TestThresholdMonitorStreakRestartsOnTargetChange(t *testing.T) {
	m, sim := monitorFixture(t, 10*time.Second)
	// Establish a violation streak.
	for i := 0; i < 3; i++ {
		m.observe(2 * time.Second)
		sim.Advance(time.Second)
	}
	m.mu.Lock()
	firstStart := m.streakStart
	m.mu.Unlock()
	// Let the slow samples age out, then observe fast: the probed branch
	// flips to MultiPrimaries and the streak clock must restart.
	sim.Advance(11 * time.Second)
	for i := 0; i < 3; i++ {
		m.observe(5 * time.Millisecond)
		sim.Advance(100 * time.Millisecond)
	}
	m.mu.Lock()
	target, start := m.streakTarget, m.streakStart
	m.mu.Unlock()
	if target != "MultiPrimariesConsistency" {
		t.Fatalf("recovered streak target = %q", target)
	}
	if !start.After(firstStart) {
		t.Fatal("streak start did not restart when the target flipped")
	}
}

func TestThresholdMonitorResetAfterSwitch(t *testing.T) {
	m, sim := monitorFixture(t, 10*time.Second)
	for i := 0; i < 3; i++ {
		m.observe(2 * time.Second)
		sim.Advance(time.Second)
	}
	m.mu.Lock()
	m.pendingChange = true // as if a change request was issued
	m.mu.Unlock()

	before := sim.Now()
	sim.Advance(time.Second)
	m.reset() // commitChange calls this once the switch lands

	m.mu.Lock()
	target, pending, start := m.streakTarget, m.pendingChange, m.streakStart
	m.mu.Unlock()
	if target != "" {
		t.Fatalf("streak target %q after reset", target)
	}
	if pending {
		t.Fatal("pendingChange survived reset")
	}
	if !start.After(before) {
		t.Fatal("streak start not re-anchored at reset time")
	}
	// Samples observed before the switch may remain; the streak must restart
	// from scratch on the next observation.
	m.observe(2 * time.Second)
	m.mu.Lock()
	target, start = m.streakTarget, m.streakStart
	m.mu.Unlock()
	if target != "EventualConsistency" {
		t.Fatalf("post-reset streak target = %q", target)
	}
	if got := sim.Now().Sub(start); got != 0 {
		t.Fatalf("post-reset streak age = %v, want 0", got)
	}
}

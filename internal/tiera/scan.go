package tiera

import (
	"context"
	"fmt"
	"time"

	"repro/internal/policy"
)

func errNoPredicate(action string) error {
	return fmt.Errorf("tiera: %s outside an operation requires a what: predicate", action)
}

func errGrowArgs() error { return fmt.Errorf("tiera: grow requires by: <size>") }

func errNoTier(label string) error { return fmt.Errorf("tiera: no tier %q", label) }

func errUnsupported(action string) error {
	return fmt.Errorf("tiera: unsupported local action %q", action)
}

func errCannotAssign(path string) error {
	return fmt.Errorf("tiera: cannot assign %q outside an operation", path)
}

// timerExec executes policy actions fired outside a put operation (timer,
// filled, and object-monitor events): there is no current object, so every
// data-touching action must use a predicate selector.
type timerExec struct {
	inst *Instance
}

// Do implements policy.Executor.
func (e *timerExec) Do(call *policy.ActionCall) error {
	in := e.inst
	switch call.Name {
	case "copy", "move":
		to, err := call.StringArg("to")
		if err != nil {
			return err
		}
		pred, ok := call.Preds["what"]
		if !ok {
			return errNoPredicate(call.Name)
		}
		return in.transferMatching(context.Background(), pred, to, call.Name == "move", bandwidthOf(call))
	case "delete":
		return in.deleteBySelector(call)
	case "compress", "encrypt":
		pred, ok := call.Preds["what"]
		if !ok {
			return errNoPredicate(call.Name)
		}
		return in.transformMatching(pred, call.Name == "encrypt")
	case "grow":
		what, err := call.StringArg("what")
		if err != nil {
			return err
		}
		by, ok := call.Arg("by")
		if !ok || by.Kind != policy.ValSize {
			return errGrowArgs()
		}
		t, exists := in.tiers[what]
		if !exists {
			return errNoTier(what)
		}
		t.Grow(by.Size)
		return nil
	default:
		return errUnsupported(call.Name)
	}
}

// Assign implements policy.Executor; nothing is assignable outside an op.
func (e *timerExec) Assign(path string, v policy.Value) error {
	return errCannotAssign(path)
}

// RunTimerEventsOnce fires every timer event's body once, regardless of
// period. Experiments and tests drive write-back deterministically with
// this; Start runs them on their declared periods.
func (in *Instance) RunTimerEventsOnce() error {
	for _, ev := range in.prog.ByKind(policy.KindTimer) {
		if err := ev.Execute(policy.NewMapEnv(), &timerExec{inst: in}); err != nil {
			return err
		}
	}
	return nil
}

// RunObjectMonitorsOnce evaluates every object-monitor event (cold-data
// checks): for each event, objects matching the event expression get the
// response body executed with the matching object preselected — the body's
// own predicates then refine the selection.
func (in *Instance) RunObjectMonitorsOnce() error {
	for _, ev := range in.prog.ByKind(policy.KindObjectMonitor) {
		// The event expression itself is a predicate over object attrs.
		expr := ev.Expr
		eventPred := func(env policy.Env) (bool, error) { return policy.EvalBool(expr, env) }
		matches, err := in.matchObjects(eventPred)
		if err != nil {
			return err
		}
		if len(matches) == 0 {
			continue
		}
		// Execute the body with every selector predicate conjoined with the
		// event predicate, so only objects that triggered the event are
		// touched (cold objects, not everything in tier1).
		exec := &monitorExec{timerExec: timerExec{inst: in}, eventPred: eventPred}
		if err := ev.Execute(policy.NewMapEnv(), exec); err != nil {
			return err
		}
	}
	return nil
}

// monitorExec narrows every body predicate by the triggering event's
// predicate.
type monitorExec struct {
	timerExec
	eventPred policy.Predicate
}

// Do implements policy.Executor.
func (e *monitorExec) Do(call *policy.ActionCall) error {
	narrowed := &policy.ActionCall{Name: call.Name, Args: call.Args, Preds: map[string]policy.Predicate{}}
	for name, pred := range call.Preds {
		p := pred
		narrowed.Preds[name] = func(env policy.Env) (bool, error) {
			ok, err := e.eventPred(env)
			if err != nil || !ok {
				return false, err
			}
			return p(env)
		}
	}
	return e.timerExec.Do(narrowed)
}

// checkFilled fires filled events whose tier crossed its threshold since
// the last check (edge-triggered so a backup policy runs once per
// crossing, not on every subsequent put).
func (in *Instance) checkFilled() {
	for _, ev := range in.prog.ByKind(policy.KindFilled) {
		t, ok := in.tiers[ev.Tier]
		if !ok {
			continue
		}
		filled := fillFraction(t)
		in.mu.Lock()
		was := in.fillLatched[ev.Tier]
		now := filled >= ev.FillFrac
		in.fillLatched[ev.Tier] = now
		in.mu.Unlock()
		if now && !was {
			_ = ev.Execute(policy.NewMapEnv(), &timerExec{inst: in})
		}
	}
}

// fillFraction returns used/capacity for any tier (0 when unlimited).
func fillFraction(t interface {
	Used() int64
	Capacity() int64
}) float64 {
	c := t.Capacity()
	if c == 0 {
		return 0
	}
	return float64(t.Used()) / float64(c)
}

// Start launches the background schedulers: one goroutine per timer event
// on its declared period and one scan loop for object monitors on the
// configured ScanInterval. Stop (or Close) terminates them.
func (in *Instance) Start() {
	in.mu.Lock()
	if in.started {
		in.mu.Unlock()
		return
	}
	in.started = true
	in.stopCh = make(chan struct{})
	stop := in.stopCh
	in.mu.Unlock()

	for _, ev := range in.prog.ByKind(policy.KindTimer) {
		go in.timerLoop(ev, stop)
	}
	if len(in.prog.ByKind(policy.KindObjectMonitor)) > 0 {
		go in.monitorLoop(stop)
	}
}

func (in *Instance) timerLoop(ev *policy.CompiledEvent, stop <-chan struct{}) {
	period := ev.Period
	if period <= 0 {
		period = time.Second
	}
	for {
		select {
		case <-stop:
			return
		case <-in.clk.After(period):
			_ = ev.Execute(policy.NewMapEnv(), &timerExec{inst: in})
		}
	}
}

func (in *Instance) monitorLoop(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-in.clk.After(in.scanInterval):
			_ = in.RunObjectMonitorsOnce()
		}
	}
}

// Stop terminates background schedulers (idempotent).
func (in *Instance) Stop() {
	in.mu.Lock()
	if in.started {
		close(in.stopCh)
		in.started = false
	}
	in.mu.Unlock()
}

package tiera

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"

	"repro/internal/object"
	"repro/internal/policy"
)

// Payload transformations implement the paper's compress and encrypt
// responses (Sec 2.1). A policy applies them to stored objects —
// compress(what: object.location == tier2) shrinks cold data, encrypt(...)
// protects it — and reads reverse them transparently: the application
// always sees the original bytes. When both are applied, compression runs
// first (compressing ciphertext is useless).

// instanceKey derives the instance's AES-256 key. A production deployment
// would inject key material; the derivation from the instance name keeps
// the mechanism (and its tests) self-contained.
func (in *Instance) instanceKey() []byte {
	sum := sha256.Sum256([]byte("wiera-instance-key/" + in.name))
	return sum[:]
}

// compressPayload gzips data.
func compressPayload(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return nil, fmt.Errorf("tiera: compress: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("tiera: compress: %w", err)
	}
	return buf.Bytes(), nil
}

// decompressPayload reverses compressPayload.
func decompressPayload(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("tiera: decompress: %w", err)
	}
	defer zr.Close()
	out, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("tiera: decompress: %w", err)
	}
	return out, nil
}

// encryptPayload seals data with AES-256-GCM under key; the nonce is
// prepended to the ciphertext.
func encryptPayload(key, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("tiera: encrypt: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("tiera: encrypt: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("tiera: encrypt: %w", err)
	}
	return append(nonce, gcm.Seal(nil, nonce, data, nil)...), nil
}

// decryptPayload reverses encryptPayload.
func decryptPayload(key, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("tiera: decrypt: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("tiera: decrypt: %w", err)
	}
	if len(data) < gcm.NonceSize() {
		return nil, fmt.Errorf("tiera: decrypt: ciphertext too short")
	}
	out, err := gcm.Open(nil, data[:gcm.NonceSize()], data[gcm.NonceSize():], nil)
	if err != nil {
		return nil, fmt.Errorf("tiera: decrypt: %w", err)
	}
	return out, nil
}

// transformMatching applies compress or encrypt to every (version, tier)
// pair the predicate selects. Already-transformed versions are skipped
// (idempotent policies).
func (in *Instance) transformMatching(pred policy.Predicate, encrypt bool) error {
	matches, err := in.matchObjects(pred)
	if err != nil {
		return err
	}
	for _, m := range matches {
		if (encrypt && m.meta.Encrypted) || (!encrypt && m.meta.Compressed) {
			continue
		}
		if err := in.transformOne(m.meta, encrypt); err != nil {
			return err
		}
	}
	return nil
}

// transformOne rewrites one version's payload in every tier holding it.
// The rewrite is not atomic with the metadata flag update: a reader racing
// a transform sweep can observe a rewritten payload before the flags are
// set (or vice versa on partial failure). Transform sweeps are intended
// for settled data (cold tiers, post-write-back), where no concurrent
// readers of the same version exist; policies should scope their selectors
// accordingly.
func (in *Instance) transformOne(meta object.Meta, encrypt bool) error {
	if encrypt && meta.Compressed {
		// Fine: encrypting compressed bytes preserves the reverse order.
	}
	if !encrypt && meta.Encrypted {
		return fmt.Errorf("tiera: cannot compress %s after encryption", meta.Key)
	}
	vk := object.VersionKey(meta.Key, meta.Version)
	var transformed []byte
	for _, label := range in.tierOrder {
		t := in.tiers[label]
		if !t.Has(vk) {
			continue
		}
		if transformed == nil {
			raw, err := t.Get(context.Background(), vk)
			if err != nil {
				return err
			}
			if encrypt {
				transformed, err = encryptPayload(in.instanceKey(), raw)
			} else {
				transformed, err = compressPayload(raw)
			}
			if err != nil {
				return err
			}
		}
		if err := t.Put(context.Background(), vk, transformed); err != nil {
			return err
		}
	}
	if transformed == nil {
		return fmt.Errorf("tiera: no tier holds %s", vk)
	}
	compressed, encrypted := meta.Compressed, meta.Encrypted
	if encrypt {
		encrypted = true
	} else {
		compressed = true
	}
	if err := in.objects.SetTransforms(meta.Key, meta.Version, compressed, encrypted); err != nil {
		return err
	}
	in.persistMeta(meta.Key)
	return nil
}

// untransform reverses any payload transformations for a read.
func (in *Instance) untransform(meta object.Meta, data []byte) ([]byte, error) {
	var err error
	if meta.Encrypted {
		data, err = decryptPayload(in.instanceKey(), data)
		if err != nil {
			return nil, err
		}
	}
	if meta.Compressed {
		data, err = decompressPayload(data)
		if err != nil {
			return nil, err
		}
	}
	return data, nil
}

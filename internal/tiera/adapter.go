package tiera

import (
	"context"

	"repro/internal/cost"
	"repro/internal/object"
	"repro/internal/tier"
)

// InstanceTier adapts a whole Tiera instance into a storage tier of another
// instance — the paper's modular instances (Sec 3.2.2): "a Tiera instance
// can specify another Tiera instance as a storage tier", e.g. wrapping
// RAW-BIG-DATA-INSTANCES as a read-only tier under an INTERMEDIATE-DATA
// instance.
type InstanceTier struct {
	label    string
	backend  *Instance
	readOnly bool
}

// NewInstanceTier wraps backend as a tier named label. With readOnly set,
// Put and Delete are rejected (the paper's read-only raw-data tier).
func NewInstanceTier(label string, backend *Instance, readOnly bool) *InstanceTier {
	return &InstanceTier{label: label, backend: backend, readOnly: readOnly}
}

// Name implements tier.Tier.
func (a *InstanceTier) Name() string { return a.label }

// Class implements tier.Tier: the class of the backend's first tier.
func (a *InstanceTier) Class() cost.TierClass {
	if len(a.backend.tierOrder) > 0 {
		return a.backend.tiers[a.backend.tierOrder[0]].Class()
	}
	return cost.ClassS3
}

// Volatile implements tier.Tier: an instance tier is durable if any of its
// backend tiers is durable.
func (a *InstanceTier) Volatile() bool {
	for _, label := range a.backend.tierOrder {
		if !a.backend.tiers[label].Volatile() {
			return false
		}
	}
	return true
}

// errReadOnly reports writes to a read-only instance tier.
type errReadOnly struct{ label string }

func (e errReadOnly) Error() string {
	return "tiera: instance tier " + e.label + " is read-only"
}

// Put implements tier.Tier by storing through the backend instance's own
// policy. Version-composite keys pass through unchanged (the backend
// versions them independently).
func (a *InstanceTier) Put(ctx context.Context, key string, data []byte) error {
	if a.readOnly {
		return errReadOnly{a.label}
	}
	_, err := a.backend.Put(ctx, key, data)
	return err
}

// Get implements tier.Tier, reading the latest version from the backend.
func (a *InstanceTier) Get(ctx context.Context, key string) ([]byte, error) {
	data, _, err := a.backend.Get(ctx, key)
	return data, err
}

// Delete implements tier.Tier.
func (a *InstanceTier) Delete(ctx context.Context, key string) error {
	if a.readOnly {
		return errReadOnly{a.label}
	}
	return a.backend.Remove(ctx, key)
}

// Has implements tier.Tier.
func (a *InstanceTier) Has(key string) bool {
	_, err := a.backend.objects.Latest(key)
	return err == nil
}

// Keys implements tier.Tier.
func (a *InstanceTier) Keys() []string { return a.backend.objects.Keys() }

// Used implements tier.Tier: total bytes across backend tiers.
func (a *InstanceTier) Used() int64 {
	var total int64
	for _, label := range a.backend.tierOrder {
		total += a.backend.tiers[label].Used()
	}
	return total
}

// Capacity implements tier.Tier: total capacity across backend tiers (0 if
// any is unlimited).
func (a *InstanceTier) Capacity() int64 {
	var total int64
	for _, label := range a.backend.tierOrder {
		c := a.backend.tiers[label].Capacity()
		if c == 0 {
			return 0
		}
		total += c
	}
	return total
}

// Grow implements tier.Tier by growing the backend's first tier.
func (a *InstanceTier) Grow(delta int64) {
	if len(a.backend.tierOrder) > 0 {
		a.backend.tiers[a.backend.tierOrder[0]].Grow(delta)
	}
}

// Stats implements tier.Tier with the backend's aggregate counters.
func (a *InstanceTier) Stats() tier.Stats {
	var agg tier.Stats
	for _, label := range a.backend.tierOrder {
		s := a.backend.tiers[label].Stats()
		agg.Puts += s.Puts
		agg.Gets += s.Gets
		agg.Deletes += s.Deletes
		agg.BytesIn += s.BytesIn
		agg.BytesOut += s.BytesOut
		agg.Evictions += s.Evictions
	}
	return agg
}

// Backend returns the wrapped instance.
func (a *InstanceTier) Backend() *Instance { return a.backend }

// compile-time interface check
var _ tier.Tier = (*InstanceTier)(nil)

// suppress unused import when object package is only used in doc comments
var _ = object.VersionKey

// Package tiera implements a Tiera instance (paper Sec 2): a policy-driven
// storage container spanning multiple cloud storage tiers inside one data
// center. An instance owns a set of tiers (declared in its policy
// specification), a versioned object index, an optional persistent metadata
// store (the BerkeleyDB substitute), and the compiled local policy whose
// insert/timer/filled/object-monitor events drive data placement: write-back
// and write-through caching, backup on fill thresholds, cold-data demotion,
// and tier growth.
//
// Wiera (internal/wiera) composes instances across regions; this package is
// purely intra-DC.
package tiera

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/cost"
	"repro/internal/metastore"
	"repro/internal/object"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tier"
)

// Tier name aliases: the paper's figures name services (Memcached, EBS,
// S3); our standard tier kinds use implementation names.
var tierKindAliases = map[string]string{
	"memcached":        "memory",
	"memory":           "memory",
	"localmemory":      "memory",
	"elasticache":      "memory",
	"ebs":              "ebs-ssd",
	"ebs-ssd":          "ebs-ssd",
	"ebs-ssd-cached":   "ebs-ssd-cached",
	"localdisk":        "ebs-ssd",
	"ebs-hdd":          "ebs-hdd",
	"s3":               "s3",
	"s3-ia":            "s3-ia",
	"cheapestarchival": "s3-ia",
	"glacier":          "glacier",
}

// KindForTierName maps a policy tier name (Memcached, EBS, S3, ...) to a
// standard tier kind.
func KindForTierName(name string) (string, error) {
	kind, ok := tierKindAliases[strings.ToLower(name)]
	if !ok {
		return "", fmt.Errorf("tiera: unknown tier service name %q", name)
	}
	return kind, nil
}

// Config assembles an Instance.
type Config struct {
	// Name uniquely identifies the instance (e.g. "us-west/LowLatency").
	Name string
	// Region locates the instance's data center.
	Region simnet.Region
	// Spec is the local Tiera policy; its tier declarations define the
	// tiers. Must not be a global (Wiera) spec.
	Spec *policy.Spec
	// Params binds spec parameters, e.g. {"t": DurationVal(10s)}.
	Params map[string]policy.Value
	// Clock drives all simulated latency. Required.
	Clock clock.Clock
	// Accountant, when set, receives request charges from all tiers.
	Accountant *cost.Accountant
	// MetaPath, when non-empty, persists object metadata to this file so an
	// instance can recover its index after a crash.
	MetaPath string
	// ScanInterval is the period of the object-monitor scan loop started by
	// Start (cold-data checks). Defaults to 10s of clock time.
	ScanInterval time.Duration
	// ExtraTiers lets callers install pre-built tiers (including another
	// instance adapted as a tier — the paper's modular instances). Keyed by
	// tier label; these take precedence over spec tier declarations with
	// the same label.
	ExtraTiers map[string]tier.Tier
	// Metrics, when set, receives the instance's operation metrics and the
	// per-tier service-time metrics of every tier the instance builds.
	Metrics *telemetry.Registry
}

// Instance is one Tiera storage instance.
type Instance struct {
	name   string
	region simnet.Region
	clk    clock.Clock
	prog   *policy.Program

	tiers     map[string]tier.Tier
	tierOrder []string // declaration order: tier1 first

	objects *object.Store
	meta    *metastore.Store // nil when not persisting

	mu           sync.Mutex
	fillLatched  map[string]bool // filled-event edge detection, by tier label
	stopCh       chan struct{}
	started      bool
	scanInterval time.Duration

	// PutLatency/GetLatency record per-operation service times.
	PutLatency *stats.Histogram
	GetLatency *stats.Histogram
	putCount   stats.Counter
	getCount   stats.Counter

	// Registry children cached at construction (nil = uninstrumented).
	putSeconds *telemetry.Histogram
	getSeconds *telemetry.Histogram
}

// New builds an instance from cfg, constructing its tiers from the policy
// spec's tier declarations.
func New(cfg Config) (*Instance, error) {
	if cfg.Name == "" {
		return nil, errors.New("tiera: instance name required")
	}
	if cfg.Clock == nil {
		return nil, errors.New("tiera: clock required")
	}
	if cfg.Spec == nil {
		return nil, errors.New("tiera: policy spec required")
	}
	if cfg.Spec.IsGlobal {
		return nil, fmt.Errorf("tiera: spec %q is a global (Wiera) policy", cfg.Spec.Name)
	}
	prog, err := policy.Compile(cfg.Spec, cfg.Params)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		name:        cfg.Name,
		region:      cfg.Region,
		clk:         cfg.Clock,
		prog:        prog,
		tiers:       make(map[string]tier.Tier),
		objects:     object.NewStore(),
		fillLatched: make(map[string]bool),
		PutLatency:  stats.NewHistogram(),
		GetLatency:  stats.NewHistogram(),
	}
	for _, td := range cfg.Spec.Tiers {
		if extra, ok := cfg.ExtraTiers[td.Label]; ok {
			inst.tiers[td.Label] = extra
			inst.tierOrder = append(inst.tierOrder, td.Label)
			continue
		}
		t, err := buildTier(td, cfg)
		if err != nil {
			return nil, err
		}
		inst.tiers[td.Label] = t
		inst.tierOrder = append(inst.tierOrder, td.Label)
	}
	for label, t := range cfg.ExtraTiers {
		if _, ok := inst.tiers[label]; !ok {
			inst.tiers[label] = t
			inst.tierOrder = append(inst.tierOrder, label)
		}
	}
	sortExtraStable(inst.tierOrder)
	if len(inst.tiers) == 0 {
		return nil, fmt.Errorf("tiera: spec %q declares no tiers", cfg.Spec.Name)
	}
	if cfg.MetaPath != "" {
		ms, err := metastore.Open(cfg.MetaPath)
		if err != nil {
			return nil, err
		}
		inst.meta = ms
		if err := inst.loadMeta(); err != nil {
			return nil, err
		}
	}
	inst.scanInterval = cfg.ScanInterval
	if inst.scanInterval <= 0 {
		inst.scanInterval = 10 * time.Second
	}
	if cfg.Metrics != nil {
		hist := cfg.Metrics.Histogram("tiera_op_seconds",
			"Tiera instance end-to-end operation time.", "op", "instance", "region")
		inst.putSeconds = hist.With("put", cfg.Name, string(cfg.Region))
		inst.getSeconds = hist.With("get", cfg.Name, string(cfg.Region))
		for _, label := range inst.tierOrder {
			if st, ok := inst.tiers[label].(*tier.Store); ok {
				st.SetTelemetry(cfg.Metrics, string(cfg.Region))
			}
		}
	}
	return inst, nil
}

// sortExtraStable keeps tierN labels in numeric order (tier1, tier2, ...,
// tier10) rather than lexicographic.
func sortExtraStable(labels []string) {
	sort.SliceStable(labels, func(i, j int) bool {
		a, b := labels[i], labels[j]
		if strings.HasPrefix(a, "tier") && strings.HasPrefix(b, "tier") {
			var ai, bi int
			if _, err := fmt.Sscanf(a, "tier%d", &ai); err == nil {
				if _, err := fmt.Sscanf(b, "tier%d", &bi); err == nil {
					return ai < bi
				}
			}
		}
		return a < b
	})
}

func buildTier(td policy.TierDecl, cfg Config) (tier.Tier, error) {
	nameVal, ok := policy.FindAttr(td.Attrs, "name")
	if !ok {
		return nil, fmt.Errorf("tiera: tier %q missing name attribute", td.Label)
	}
	kind, err := KindForTierName(nameVal.Str)
	if err != nil {
		return nil, err
	}
	var capacity int64
	if sz, ok := policy.FindAttr(td.Attrs, "size"); ok {
		if sz.Kind != policy.ValSize {
			return nil, fmt.Errorf("tiera: tier %q size is not a size value", td.Label)
		}
		capacity = sz.Size
	}
	st, err := tier.Standard(td.Label, kind, capacity, cfg.Clock)
	if err != nil {
		return nil, err
	}
	iops := 0
	if v, ok := policy.FindAttr(td.Attrs, "iops"); ok {
		if v.Kind != policy.ValNumber || v.Num < 0 {
			return nil, fmt.Errorf("tiera: tier %q iops must be a non-negative number", td.Label)
		}
		iops = int(v.Num)
	}
	if cfg.Accountant != nil || iops > 0 {
		// Rebuild through tier.New: Standard has no hooks for the
		// accountant or an IOPS cap (how Azure throttles attached disks,
		// the Fig 11 local-disk setting).
		c := tier.Config{
			Name: td.Label, Class: st.Class(), Capacity: capacity,
			Volatile: st.Volatile(), Accountant: cfg.Accountant,
		}
		c.Profile, c.EvictLRU = standardProfile(kind)
		c.Profile.IOPSCap = iops
		return tier.New(c, cfg.Clock)
	}
	return st, nil
}

func standardProfile(kind string) (tier.LatencyProfile, bool) {
	switch kind {
	case "memory":
		return tier.MemoryProfile, true
	case "ebs-ssd":
		return tier.EBSSSDProfile, false
	case "ebs-ssd-cached":
		return tier.EBSSSDCachedProfile, false
	case "ebs-hdd":
		return tier.EBSHDDProfile, false
	case "s3":
		return tier.S3Profile, false
	case "s3-ia":
		return tier.S3IAProfile, false
	default:
		return tier.GlacierProfile, false
	}
}

// Name returns the instance name.
func (in *Instance) Name() string { return in.name }

// Region returns the instance's region.
func (in *Instance) Region() simnet.Region { return in.region }

// Clock returns the clock the instance runs on.
func (in *Instance) Clock() clock.Clock { return in.clk }

// Program returns the compiled local policy.
func (in *Instance) Program() *policy.Program { return in.prog }

// TierOrder returns tier labels in declaration order (fastest first by
// convention).
func (in *Instance) TierOrder() []string {
	out := make([]string, len(in.tierOrder))
	copy(out, in.tierOrder)
	return out
}

// Tier returns the tier with the given label.
func (in *Instance) Tier(label string) (tier.Tier, bool) {
	t, ok := in.tiers[label]
	return t, ok
}

// Objects exposes the version index (read-mostly; used by Wiera and tests).
func (in *Instance) Objects() *object.Store { return in.objects }

// Usage reports how many keys the instance holds and the total physical
// size of their latest versions — the per-worker ownership numbers the
// sharding layer exports (ring_keys / ring_bytes). Physical, not
// logical: an erasure-coded version stores only this replica's fragment
// bundle, so summing Meta.Size would over-report EC keys by the scheme's
// stripe factor and erase the storage savings the layout exists for.
func (in *Instance) Usage() (keys int, bytes int64) {
	for _, key := range in.objects.Keys() {
		m, err := in.objects.Latest(key)
		if err != nil {
			continue
		}
		keys++
		bytes += m.StoredBytes()
	}
	return keys, bytes
}

// PutCount and GetCount report operation totals.
func (in *Instance) PutCount() int64 { return in.putCount.Value() }

// GetCount reports the number of Get operations served.
func (in *Instance) GetCount() int64 { return in.getCount.Value() }

// Put stores data as a new version of key, driving the local insert policy.
// It returns the created version's metadata.
func (in *Instance) Put(ctx context.Context, key string, data []byte) (object.Meta, error) {
	return in.PutTagged(ctx, key, data, nil)
}

// PutTagged stores data with application tags attached to the new version.
func (in *Instance) PutTagged(ctx context.Context, key string, data []byte, tags []string) (object.Meta, error) {
	ctx, span := telemetry.StartSpan(ctx, "tiera.put")
	span.SetAttr("instance", in.name)
	span.SetAttr("region", string(in.region))
	defer span.End()

	start := in.clk.Now()
	meta, err := in.putInternal(ctx, key, data, tags)
	if err != nil {
		span.SetError(err)
		return object.Meta{}, err
	}
	in.PutLatency.Record(in.clk.Since(start))
	in.putSeconds.RecordTrace(in.clk.Since(start), span.TraceIDString())
	in.putCount.Inc()
	return meta, nil
}

func (in *Instance) putInternal(ctx context.Context, key string, data []byte, tags []string) (object.Meta, error) {
	if len(in.tierOrder) == 0 {
		return object.Meta{}, errors.New("tiera: no tiers")
	}
	target := in.tierOrder[0]
	now := in.clk.Now()
	meta := in.objects.Put(key, int64(len(data)), target, in.name, tags, now)

	op := &opContext{ctx: ctx, inst: in, key: key, meta: meta, data: data, target: target}
	env := policy.NewMapEnv()
	env.Set("insert.key", policy.StringVal(key))
	env.Set("insert.into", policy.IdentVal(target))
	env.Set("insert.object", policy.IdentVal(key))
	env.Set("insert.object.size", policy.SizeVal(int64(len(data))))

	inserts := in.prog.ByKind(policy.KindInsert)
	// When no insert event body performs an explicit store, the put's
	// default store to the first tier happens first and the events react to
	// it — the paper's Fig 1(b) write-through, where event(insert.into ==
	// tier1) copies data that is already in tier1.
	if !anyStoresExplicitly(inserts) {
		if err := op.storeTo(target); err != nil {
			return object.Meta{}, err
		}
	}
	for _, ev := range inserts {
		if _, err := ev.Fire(env, &localExec{op: op}); err != nil {
			return object.Meta{}, err
		}
	}
	if !op.stored {
		if err := op.storeTo(target); err != nil {
			return object.Meta{}, err
		}
	}
	if op.dirty {
		if err := in.objects.SetDirty(key, meta.Version, true); err != nil {
			return object.Meta{}, err
		}
	}
	in.persistMeta(key)
	in.checkFilled()
	final, err := in.objects.GetVersion(key, meta.Version)
	if err != nil {
		return object.Meta{}, err
	}
	return final, nil
}

// anyStoresExplicitly reports whether any insert event body contains a
// store action (in any branch).
func anyStoresExplicitly(events []*policy.CompiledEvent) bool {
	var scan func(stmts []policy.Stmt) bool
	scan = func(stmts []policy.Stmt) bool {
		for _, s := range stmts {
			switch st := s.(type) {
			case *policy.ActionStmt:
				if st.Name == "store" {
					return true
				}
			case *policy.IfStmt:
				if scan(st.Then) || scan(st.Else) {
					return true
				}
			}
		}
		return false
	}
	for _, ev := range events {
		if scan(ev.Body) {
			return true
		}
	}
	return false
}

// Get returns the latest version's payload and metadata for key.
func (in *Instance) Get(ctx context.Context, key string) ([]byte, object.Meta, error) {
	ctx, span := telemetry.StartSpan(ctx, "tiera.get")
	span.SetAttr("instance", in.name)
	span.SetAttr("region", string(in.region))
	defer span.End()

	meta, err := in.objects.Latest(key)
	if err != nil {
		// Unknown locally: fall through to mounted instance tiers, which
		// resolve raw keys against their backing instance (the paper's
		// modular instances, Sec 3.2.2 — e.g. a read-only raw-data store
		// mounted under a caching instance).
		start := in.clk.Now()
		for _, label := range in.tierOrder {
			it, ok := in.tiers[label].(*InstanceTier)
			if !ok || !it.Has(key) {
				continue
			}
			data, m, gerr := it.Backend().Get(ctx, key)
			if gerr != nil {
				continue
			}
			in.GetLatency.Record(in.clk.Since(start))
			in.getSeconds.RecordTrace(in.clk.Since(start), span.TraceIDString())
			in.getCount.Inc()
			return data, m, nil
		}
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	return in.getVersion(ctx, meta)
}

// GetVersion returns a specific version's payload and metadata.
func (in *Instance) GetVersion(ctx context.Context, key string, v object.Version) ([]byte, object.Meta, error) {
	ctx, span := telemetry.StartSpan(ctx, "tiera.get")
	span.SetAttr("instance", in.name)
	span.SetAttr("region", string(in.region))
	defer span.End()

	meta, err := in.objects.GetVersion(key, v)
	if err != nil {
		span.SetError(err)
		return nil, object.Meta{}, err
	}
	return in.getVersion(ctx, meta)
}

func (in *Instance) getVersion(ctx context.Context, meta object.Meta) ([]byte, object.Meta, error) {
	start := in.clk.Now()
	vk := object.VersionKey(meta.Key, meta.Version)
	for _, label := range in.tierOrder {
		t := in.tiers[label]
		if !t.Has(vk) {
			continue
		}
		data, err := t.Get(ctx, vk)
		if err != nil {
			continue // raced with eviction; try the next tier
		}
		in.objects.Touch(meta.Key, meta.Version, in.clk.Now())
		in.GetLatency.Record(in.clk.Since(start))
		in.getSeconds.RecordTrace(in.clk.Since(start),
			telemetry.SpanFromContext(ctx).TraceIDString())
		in.getCount.Inc()
		m, err := in.objects.GetVersion(meta.Key, meta.Version)
		if err != nil {
			m = meta
		}
		// Reverse any compress/encrypt transformations: applications always
		// see the original bytes.
		data, err = in.untransform(m, data)
		if err != nil {
			return nil, object.Meta{}, err
		}
		return data, m, nil
	}
	return nil, object.Meta{}, fmt.Errorf("tiera: payload for %s missing from all tiers",
		object.VersionKey(meta.Key, meta.Version))
}

// VersionList returns available versions of key (Table 2).
func (in *Instance) VersionList(key string) ([]object.Version, error) {
	return in.objects.VersionList(key)
}

// Remove deletes all versions of key from every tier and the index.
func (in *Instance) Remove(ctx context.Context, key string) error {
	versions, err := in.objects.VersionList(key)
	if err != nil {
		return err
	}
	for _, v := range versions {
		in.deletePayload(ctx, key, v)
	}
	if err := in.objects.Remove(key); err != nil {
		return err
	}
	in.unpersistMeta(key)
	return nil
}

// RemoveVersion deletes one version of key.
func (in *Instance) RemoveVersion(ctx context.Context, key string, v object.Version) error {
	if _, err := in.objects.GetVersion(key, v); err != nil {
		return err
	}
	in.deletePayload(ctx, key, v)
	if err := in.objects.RemoveVersion(key, v); err != nil {
		return err
	}
	in.persistMeta(key)
	return nil
}

func (in *Instance) deletePayload(ctx context.Context, key string, v object.Version) {
	vk := object.VersionKey(key, v)
	for _, label := range in.tierOrder {
		if in.tiers[label].Has(vk) {
			_ = in.tiers[label].Delete(ctx, vk)
		}
	}
}

// ApplyRemote installs a replica-propagated version: metadata via
// last-writer-wins and the payload into the first tier. It returns whether
// the update won. This is the replication receive path (paper Sec 4.2).
func (in *Instance) ApplyRemote(ctx context.Context, meta object.Meta, data []byte) (bool, error) {
	ctx, span := telemetry.StartSpan(ctx, "tiera.applyRemote")
	span.SetAttr("instance", in.name)
	span.SetAttr("region", string(in.region))
	defer span.End()

	if !in.objects.Apply(meta) {
		return false, nil
	}
	vk := object.VersionKey(meta.Key, meta.Version)
	if err := in.tiers[in.tierOrder[0]].Put(ctx, vk, data); err != nil {
		return false, err
	}
	if err := in.objects.SetTier(meta.Key, meta.Version, in.tierOrder[0]); err != nil {
		return false, err
	}
	in.persistMeta(meta.Key)
	in.checkFilled()
	return true, nil
}

// Locations returns which tiers currently hold the payload of (key, v).
func (in *Instance) Locations(key string, v object.Version) []string {
	vk := object.VersionKey(key, v)
	var out []string
	for _, label := range in.tierOrder {
		if in.tiers[label].Has(vk) {
			out = append(out, label)
		}
	}
	return out
}

// Close stops background loops and closes the metadata store.
func (in *Instance) Close() error {
	in.Stop()
	if in.meta != nil {
		return in.meta.Close()
	}
	return nil
}

package tiera

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/object"
)

// Metadata persistence: every key's full version list is stored as one
// gob-encoded record in the metastore (the BerkeleyDB substitute), as the
// paper does ("all object metadata is stored and persisted using
// BerkeleyDB", Sec 4.2).

// persistMeta saves key's version metadata; a no-op without a metastore.
func (in *Instance) persistMeta(key string) {
	if in.meta == nil {
		return
	}
	versions, err := in.objects.VersionList(key)
	if err != nil {
		return
	}
	metas := make([]object.Meta, 0, len(versions))
	for _, v := range versions {
		if m, err := in.objects.GetVersion(key, v); err == nil {
			metas = append(metas, m)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(metas); err != nil {
		return
	}
	_ = in.meta.Put(key, buf.Bytes())
}

// unpersistMeta drops key's persisted metadata.
func (in *Instance) unpersistMeta(key string) {
	if in.meta != nil {
		_ = in.meta.Delete(key)
	}
}

// loadMeta rebuilds the object index from the metastore at startup.
func (in *Instance) loadMeta() error {
	keys, err := in.meta.Keys()
	if err != nil {
		return err
	}
	for _, key := range keys {
		raw, err := in.meta.Get(key)
		if err != nil {
			continue
		}
		var metas []object.Meta
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&metas); err != nil {
			return fmt.Errorf("tiera: corrupt metadata for %q: %w", key, err)
		}
		for _, m := range metas {
			in.objects.Apply(m)
		}
	}
	return nil
}

// SyncMeta flushes persisted metadata to stable storage.
func (in *Instance) SyncMeta() error {
	if in.meta == nil {
		return nil
	}
	return in.meta.Sync()
}

// CrashVolatile simulates a process crash for failure-injection tests:
// volatile tiers lose their contents; durable tiers and persisted metadata
// survive. The caller typically follows with operations that observe
// recovery behavior.
func (in *Instance) CrashVolatile() {
	for _, label := range in.tierOrder {
		type crasher interface{ Crash() }
		if c, ok := in.tiers[label].(crasher); ok {
			c.Crash()
		}
	}
}

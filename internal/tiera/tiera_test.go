package tiera

import (
	"bytes"
	"context"

	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/cost"
	"repro/internal/object"
	"repro/internal/policy"
	"repro/internal/simnet"
	"repro/internal/tier"
)

func fastClock() clock.Clock { return clock.NewScaled(10000) }

func newLowLatency(t *testing.T) *Instance {
	t.Helper()
	spec, err := policy.Builtin("LowLatencyInstance")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(Config{
		Name: "test/low-latency", Region: simnet.USEast, Spec: spec,
		Params: map[string]policy.Value{"t": policy.DurationVal(10 * time.Second)},
		Clock:  fastClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inst.Close() })
	return inst
}

func newPersistent(t *testing.T) *Instance {
	t.Helper()
	spec, err := policy.Builtin("PersistentInstance")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(Config{
		Name: "test/persistent", Region: simnet.USEast, Spec: spec,
		Clock: fastClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inst.Close() })
	return inst
}

func TestPutGetRoundTrip(t *testing.T) {
	inst := newLowLatency(t)
	meta, err := inst.Put(context.Background(), "k", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Version != 1 {
		t.Fatalf("version = %d", meta.Version)
	}
	data, m, err := inst.Get(context.Background(), "k")
	if err != nil || string(data) != "hello" {
		t.Fatalf("Get = %q, %v", data, err)
	}
	if m.AccessCnt != 1 {
		t.Fatalf("AccessCnt = %d", m.AccessCnt)
	}
}

func TestGetMissing(t *testing.T) {
	inst := newLowLatency(t)
	if _, _, err := inst.Get(context.Background(), "absent"); err == nil {
		t.Fatal("missing key should error")
	}
}

func TestWriteBackPolicy(t *testing.T) {
	inst := newLowLatency(t)
	meta, err := inst.Put(context.Background(), "k", []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	// LowLatencyInstance stores to tier1 (memory) and marks dirty.
	if !meta.Dirty {
		t.Fatal("insert should set dirty")
	}
	locs := inst.Locations("k", meta.Version)
	if len(locs) != 1 || locs[0] != "tier1" {
		t.Fatalf("locations after put = %v", locs)
	}
	// Timer event copies dirty objects to tier2 and clears dirty.
	if err := inst.RunTimerEventsOnce(); err != nil {
		t.Fatal(err)
	}
	locs = inst.Locations("k", meta.Version)
	if len(locs) != 2 {
		t.Fatalf("locations after write-back = %v", locs)
	}
	m, _ := inst.Objects().GetVersion("k", meta.Version)
	if m.Dirty {
		t.Fatal("write-back should clear dirty")
	}
	// A second timer run must not copy again (no dirty objects).
	t2, _ := inst.Tier("tier2")
	puts := t2.Stats().Puts
	if err := inst.RunTimerEventsOnce(); err != nil {
		t.Fatal(err)
	}
	if t2.Stats().Puts != puts {
		t.Fatal("clean objects were copied again")
	}
}

func TestWriteThroughPolicy(t *testing.T) {
	inst := newPersistent(t)
	meta, err := inst.Put(context.Background(), "k", []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	// PersistentInstance: implicit store to tier1 plus synchronous copy to
	// tier2 (write-through), no timer needed.
	locs := inst.Locations("k", meta.Version)
	if len(locs) != 2 || locs[0] != "tier1" || locs[1] != "tier2" {
		t.Fatalf("locations = %v", locs)
	}
}

func TestBackupOnFillThreshold(t *testing.T) {
	// Shrink tiers so the 50% threshold trips quickly.
	src := `
Tiera SmallPersistent {
	tier1: {name: memory, size: 1M};
	tier2: {name: ebs-ssd, size: 10KB};
	tier3: {name: s3, size: 1M};
	event(insert.into == tier1) : response {
		copy(what: insert.object, to: tier2);
	}
	event(tier2.filled == 50%) : response {
		copy(what: object.location == tier2, to: tier3);
	}
}`
	spec, err := policy.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(Config{Name: "t", Region: simnet.USEast, Spec: spec, Clock: fastClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	// ~3KB of 10KB: below threshold.
	if _, err := inst.Put(context.Background(), "a", make([]byte, 3<<10)); err != nil {
		t.Fatal(err)
	}
	t3, _ := inst.Tier("tier3")
	if len(t3.Keys()) != 0 {
		t.Fatal("backup ran below threshold")
	}
	// +3KB crosses 50%: backup copies tier2 contents to tier3.
	if _, err := inst.Put(context.Background(), "b", make([]byte, 3<<10)); err != nil {
		t.Fatal(err)
	}
	if got := len(t3.Keys()); got != 2 {
		t.Fatalf("tier3 keys = %d, want 2", got)
	}
}

func TestColdDataMonitor(t *testing.T) {
	src := `
Tiera ColdDemo {
	tier1: {name: ebs-ssd, size: 1G};
	tier2: {name: s3-ia, size: 1G};
	event(object.lastAccessedTime > 120h) : response {
		move(what: object.location == tier1, to: tier2);
	}
}`
	spec, err := policy.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewSim(time.Time{})
	inst, err := New(Config{Name: "cold", Region: simnet.USEast, Spec: spec, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	// Puts would block on the sim clock for service latency; run them in a
	// goroutine while advancing.
	done := make(chan error, 1)
	go func() {
		_, err := inst.Put(context.Background(), "hot", []byte("h"))
		if err == nil {
			_, err = inst.Put(context.Background(), "cold", []byte("c"))
		}
		done <- err
	}()
	advanceUntil(t, clk, done)

	// Age both, then touch "hot" to keep it warm.
	clk.Advance(121 * time.Hour)
	go func() {
		_, _, err := inst.Get(context.Background(), "hot")
		done <- err
	}()
	advanceUntil(t, clk, done)

	go func() { done <- inst.RunObjectMonitorsOnce() }()
	advanceUntil(t, clk, done)
	coldMeta, _ := inst.Objects().Latest("cold")
	locs := inst.Locations("cold", coldMeta.Version)
	if len(locs) != 1 || locs[0] != "tier2" {
		t.Fatalf("cold object locations = %v, want [tier2]", locs)
	}
	hotMeta, _ := inst.Objects().Latest("hot")
	locs = inst.Locations("hot", hotMeta.Version)
	if len(locs) != 1 || locs[0] != "tier1" {
		t.Fatalf("hot object locations = %v, want [tier1]", locs)
	}
}

// advanceUntil advances the sim clock until the operation completes.
func advanceUntil(t *testing.T, clk *clock.Sim, done <-chan error) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			return
		default:
			clk.Advance(10 * time.Millisecond)
			if time.Now().After(deadline) {
				t.Fatal("operation never completed")
			}
		}
	}
}

func TestVersioning(t *testing.T) {
	inst := newLowLatency(t)
	inst.Put(context.Background(), "k", []byte("v1"))
	inst.Put(context.Background(), "k", []byte("v2"))
	inst.Put(context.Background(), "k", []byte("v3"))
	vs, err := inst.VersionList("k")
	if err != nil || len(vs) != 3 {
		t.Fatalf("VersionList = %v, %v", vs, err)
	}
	data, _, err := inst.GetVersion(context.Background(), "k", 1)
	if err != nil || string(data) != "v1" {
		t.Fatalf("GetVersion(1) = %q, %v", data, err)
	}
	data, _, _ = inst.Get(context.Background(), "k")
	if string(data) != "v3" {
		t.Fatalf("latest = %q", data)
	}
	if err := inst.RemoveVersion(context.Background(), "k", 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := inst.GetVersion(context.Background(), "k", 2); err == nil {
		t.Fatal("removed version still readable")
	}
	if err := inst.Remove(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := inst.Get(context.Background(), "k"); err == nil {
		t.Fatal("removed key still readable")
	}
	if err := inst.Remove(context.Background(), "k"); err == nil {
		t.Fatal("double remove should error")
	}
	if err := inst.RemoveVersion(context.Background(), "k", 1); err == nil {
		t.Fatal("remove version of missing key should error")
	}
}

func TestTags(t *testing.T) {
	inst := newLowLatency(t)
	meta, err := inst.PutTagged(context.Background(), "tmp-file", []byte("x"), []string{"tmp"})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.HasTag("tmp") {
		t.Fatal("tag lost")
	}
}

func TestApplyRemoteLWW(t *testing.T) {
	inst := newLowLatency(t)
	base := inst.clk.Now()
	won, err := inst.ApplyRemote(context.Background(), object.Meta{
		Key: "k", Version: 1, Size: 2, Origin: "remote-1", ModifiedAt: base,
	}, []byte("r1"))
	if err != nil || !won {
		t.Fatalf("ApplyRemote = %v, %v", won, err)
	}
	data, _, err := inst.Get(context.Background(), "k")
	if err != nil || string(data) != "r1" {
		t.Fatalf("Get after apply = %q, %v", data, err)
	}
	// An older remote update loses.
	won, err = inst.ApplyRemote(context.Background(), object.Meta{
		Key: "k", Version: 1, Size: 2, Origin: "remote-0", ModifiedAt: base.Add(-time.Hour),
	}, []byte("old"))
	if err != nil || won {
		t.Fatalf("old update won = %v, %v", won, err)
	}
	data, _, _ = inst.Get(context.Background(), "k")
	if string(data) != "r1" {
		t.Fatalf("payload overwritten by losing update: %q", data)
	}
}

func TestMetadataPersistence(t *testing.T) {
	dir := t.TempDir()
	metaPath := filepath.Join(dir, "meta.db")
	spec, _ := policy.Builtin("LowLatencyInstance")
	params := map[string]policy.Value{"t": policy.DurationVal(time.Second)}
	inst, err := New(Config{
		Name: "p", Region: simnet.USEast, Spec: spec, Params: params,
		Clock: fastClock(), MetaPath: metaPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst.Put(context.Background(), "k1", []byte("v1"))
	inst.Put(context.Background(), "k1", []byte("v1b"))
	inst.Put(context.Background(), "k2", []byte("v2"))
	inst.Remove(context.Background(), "k2")
	if err := inst.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-open: metadata (versions) must be recovered.
	inst2, err := New(Config{
		Name: "p", Region: simnet.USEast, Spec: spec, Params: params,
		Clock: fastClock(), MetaPath: metaPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst2.Close()
	vs, err := inst2.VersionList("k1")
	if err != nil || len(vs) != 2 {
		t.Fatalf("recovered versions = %v, %v", vs, err)
	}
	if _, err := inst2.VersionList("k2"); err == nil {
		t.Fatal("removed key recovered")
	}
	m, err := inst2.Objects().Latest("k1")
	if err != nil || m.Version != 2 {
		t.Fatalf("recovered latest = %+v, %v", m, err)
	}
}

func TestCrashVolatileLosesMemoryKeepsDisk(t *testing.T) {
	inst := newLowLatency(t)
	meta, _ := inst.Put(context.Background(), "k", []byte("v"))
	inst.RunTimerEventsOnce() // write back to tier2
	inst.CrashVolatile()
	locs := inst.Locations("k", meta.Version)
	if len(locs) != 1 || locs[0] != "tier2" {
		t.Fatalf("locations after crash = %v", locs)
	}
	// Data still readable from the durable tier.
	data, _, err := inst.Get(context.Background(), "k")
	if err != nil || string(data) != "v" {
		t.Fatalf("Get after crash = %q, %v", data, err)
	}
}

func TestCrashBeforeWriteBackLosesData(t *testing.T) {
	inst := newLowLatency(t)
	meta, _ := inst.Put(context.Background(), "k", []byte("v"))
	inst.CrashVolatile() // dirty data only in memory: gone
	if locs := inst.Locations("k", meta.Version); len(locs) != 0 {
		t.Fatalf("locations = %v", locs)
	}
	if _, _, err := inst.Get(context.Background(), "k"); err == nil {
		t.Fatal("lost data still readable")
	}
}

func TestModularInstanceTier(t *testing.T) {
	// A backing instance holding raw data, wrapped read-only as tier2 of a
	// front instance (the paper's RAW-BIG-DATA / INTERMEDIATE-DATA case).
	backing := newPersistent(t)
	if _, err := backing.Put(context.Background(), "raw-1", []byte("raw data")); err != nil {
		t.Fatal(err)
	}
	adapter := NewInstanceTier("tier2", backing, true)

	src := `
Tiera Intermediate {
	tier1: {name: memory, size: 1G};
	tier2: {name: s3, size: 1G};
}`
	spec, _ := policy.Parse(src)
	front, err := New(Config{
		Name: "front", Region: simnet.USEast, Spec: spec, Clock: fastClock(),
		ExtraTiers: map[string]tier.Tier{"tier2": adapter},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	t2, _ := front.Tier("tier2")
	if t2 != tier.Tier(adapter) {
		t.Fatal("extra tier not installed")
	}
	// Reads of raw data flow through the adapter to the backing instance.
	data, err := t2.Get(context.Background(), "raw-1")
	if err != nil || string(data) != "raw data" {
		t.Fatalf("adapter Get = %q, %v", data, err)
	}
	// Read-only: writes rejected.
	if err := t2.Put(context.Background(), "x", []byte("y")); err == nil {
		t.Fatal("read-only adapter accepted a write")
	}
	if err := t2.Delete(context.Background(), "raw-1"); err == nil {
		t.Fatal("read-only adapter accepted a delete")
	}
	// Front instance puts go to its own tier1.
	if _, err := front.Put(context.Background(), "intermediate", []byte("mid")); err != nil {
		t.Fatal(err)
	}
	if !adapter.Volatile() {
		// PersistentInstance has durable tiers, so the adapter is durable.
	} else {
		t.Fatal("adapter over durable instance should not be volatile")
	}
	if adapter.Used() == 0 {
		t.Fatal("adapter should report backend usage")
	}
	if adapter.Backend() != backing {
		t.Fatal("Backend accessor broken")
	}
	if len(adapter.Keys()) == 0 {
		t.Fatal("adapter should list backend keys")
	}
	if !adapter.Has("raw-1") {
		t.Fatal("adapter should report backend keys")
	}
}

func TestWritableInstanceTier(t *testing.T) {
	backing := newPersistent(t)
	adapter := NewInstanceTier("t", backing, false)
	if err := adapter.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	data, err := adapter.Get(context.Background(), "k")
	if err != nil || !bytes.Equal(data, []byte("v")) {
		t.Fatalf("Get = %q, %v", data, err)
	}
	if err := adapter.Delete(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	adapter.Grow(100)
	_ = adapter.Stats()
	_ = adapter.Capacity()
	_ = adapter.Class()
}

func TestConfigValidation(t *testing.T) {
	spec, _ := policy.Builtin("LowLatencyInstance")
	wspec, _ := policy.Builtin("EventualConsistency")
	params := map[string]policy.Value{"t": policy.DurationVal(time.Second)}
	cases := []Config{
		{Region: simnet.USEast, Spec: spec, Params: params, Clock: fastClock()}, // no name
		{Name: "x", Spec: spec, Params: params},                                 // no clock
		{Name: "x", Clock: fastClock()},                                         // no spec
		{Name: "x", Spec: wspec, Clock: fastClock()},                            // global spec
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Spec with no tiers fails.
	empty, _ := policy.Parse("Tiera E { }")
	if _, err := New(Config{Name: "x", Spec: empty, Clock: fastClock()}); err == nil {
		t.Error("no-tier spec should fail")
	}
	// Unknown tier service name fails.
	badTier, _ := policy.Parse("Tiera B { tier1: {name: floppy, size: 1G}; }")
	if _, err := New(Config{Name: "x", Spec: badTier, Clock: fastClock()}); err == nil {
		t.Error("unknown tier kind should fail")
	}
}

func TestKindForTierNameAliases(t *testing.T) {
	cases := map[string]string{
		"Memcached": "memory", "LocalMemory": "memory", "EBS": "ebs-ssd",
		"LocalDisk": "ebs-ssd", "S3": "s3", "CheapestArchival": "s3-ia",
		"Glacier": "glacier",
	}
	for name, want := range cases {
		got, err := KindForTierName(name)
		if err != nil || got != want {
			t.Errorf("KindForTierName(%s) = %q, %v", name, got, err)
		}
	}
	if _, err := KindForTierName("punchcards"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestAccountantWiring(t *testing.T) {
	acct := cost.NewAccountant()
	spec, _ := policy.Builtin("PersistentInstance")
	inst, err := New(Config{
		Name: "a", Region: simnet.USEast, Spec: spec, Clock: fastClock(),
		Accountant: acct,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	inst.Put(context.Background(), "k", []byte("v"))
	rows := acct.ByClass()
	if len(rows) == 0 {
		t.Fatal("no charges recorded")
	}
}

func TestTimerLoopViaStart(t *testing.T) {
	spec, _ := policy.Builtin("LowLatencyInstance")
	inst, err := New(Config{
		Name: "bg", Region: simnet.USEast, Spec: spec,
		Params: map[string]policy.Value{"t": policy.DurationVal(50 * time.Millisecond)},
		Clock:  clock.NewScaled(100), // 50ms clock -> 0.5ms real
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	meta, _ := inst.Put(context.Background(), "k", []byte("v"))
	inst.Start()
	inst.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		if locs := inst.Locations("k", meta.Version); len(locs) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background timer never wrote back")
		}
		time.Sleep(time.Millisecond)
	}
	inst.Stop()
	inst.Stop() // idempotent
}

func TestPutGetLatencyRecorded(t *testing.T) {
	inst := newLowLatency(t)
	inst.Put(context.Background(), "k", []byte("v"))
	inst.Get(context.Background(), "k")
	if inst.PutLatency.Count() != 1 || inst.GetLatency.Count() != 1 {
		t.Fatalf("latency counts = %d/%d", inst.PutLatency.Count(), inst.GetLatency.Count())
	}
	if inst.PutCount() != 1 || inst.GetCount() != 1 {
		t.Fatalf("op counts = %d/%d", inst.PutCount(), inst.GetCount())
	}
}

func TestTierOrderNumeric(t *testing.T) {
	src := `
Tiera Many {
	tier1: {name: memory, size: 1G};
	tier2: {name: ebs-ssd, size: 1G};
	tier10: {name: s3, size: 1G};
}`
	spec, _ := policy.Parse(src)
	inst, err := New(Config{Name: "m", Region: simnet.USEast, Spec: spec, Clock: fastClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	order := inst.TierOrder()
	if fmt.Sprint(order) != "[tier1 tier2 tier10]" {
		t.Fatalf("order = %v", order)
	}
}

func TestGetFromSecondTierAfterEviction(t *testing.T) {
	// Tiny memory tier: the first object is evicted by the second; reads
	// fall through to tier2 after write-back.
	src := `
Tiera Tiny(time t) {
	tier1: {name: memory, size: 8B};
	tier2: {name: ebs-ssd, size: 1G};
	event(insert.into) : response {
		insert.object.dirty = true;
		store(what: insert.object, to: tier1);
	}
	event(time = t) : response {
		copy(what: object.location == tier1 && object.dirty == true, to: tier2);
	}
}`
	spec, _ := policy.Parse(src)
	inst, err := New(Config{
		Name: "tiny", Region: simnet.USEast, Spec: spec,
		Params: map[string]policy.Value{"t": policy.DurationVal(time.Second)},
		Clock:  fastClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	inst.Put(context.Background(), "a", []byte("11111111")) // fills the 8B memory tier
	inst.RunTimerEventsOnce()                               // a -> tier2
	inst.Put(context.Background(), "b", []byte("22222222")) // evicts a from memory
	data, _, err := inst.Get(context.Background(), "a")
	if err != nil || string(data) != "11111111" {
		t.Fatalf("Get(a) = %q, %v", data, err)
	}
}

package tiera

import (
	"context"
	"fmt"
	"time"

	"repro/internal/object"
	"repro/internal/policy"
)

// opContext carries the state of one in-flight put while its insert events
// execute. ctx carries the operation's trace span into tier accesses.
type opContext struct {
	ctx    context.Context
	inst   *Instance
	key    string
	meta   object.Meta
	data   []byte
	target string
	stored bool
	dirty  bool
}

// storeTo writes the current object's payload into the labeled tier and
// records its location.
func (op *opContext) storeTo(label string) error {
	t, ok := op.inst.tiers[label]
	if !ok {
		return fmt.Errorf("tiera: no tier %q in instance %s", label, op.inst.name)
	}
	vk := object.VersionKey(op.key, op.meta.Version)
	if err := t.Put(op.ctx, vk, op.data); err != nil {
		return err
	}
	if err := op.inst.objects.SetTier(op.key, op.meta.Version, label); err != nil {
		return err
	}
	op.stored = true
	return nil
}

// localExec executes policy actions for one put operation. It handles the
// local (intra-instance) actions; global actions (forward, queue, lock,
// release, change_policy) are rejected here and belong to the Wiera layer,
// which wraps this executor.
type localExec struct {
	op *opContext
}

// Do implements policy.Executor.
func (e *localExec) Do(call *policy.ActionCall) error {
	op := e.op
	switch call.Name {
	case "store":
		to, err := call.StringArg("to")
		if err != nil {
			return err
		}
		if to == "local_instance" {
			to = op.target
		}
		return op.storeTo(to)
	case "copy", "move":
		return e.copyOrMove(call, call.Name == "move")
	case "delete":
		return op.inst.deleteBySelector(call)
	case "compress", "encrypt":
		encrypt := call.Name == "encrypt"
		if pred, ok := call.Preds["what"]; ok {
			return op.inst.transformMatching(pred, encrypt)
		}
		// Insert-time transform of the current object.
		meta, err := op.inst.objects.GetVersion(op.key, op.meta.Version)
		if err != nil {
			return err
		}
		return op.inst.transformOne(meta, encrypt)
	case "grow":
		to, err := call.StringArg("what")
		if err != nil {
			return err
		}
		by, ok := call.Arg("by")
		if !ok || by.Kind != policy.ValSize {
			return fmt.Errorf("tiera: grow requires by: <size>")
		}
		t, exists := op.inst.tiers[to]
		if !exists {
			return fmt.Errorf("tiera: no tier %q to grow", to)
		}
		t.Grow(by.Size)
		return nil
	default:
		return fmt.Errorf("tiera: unsupported local action %q", call.Name)
	}
}

func (e *localExec) copyOrMove(call *policy.ActionCall, move bool) error {
	op := e.op
	to, err := call.StringArg("to")
	if err != nil {
		return err
	}
	// For insert-time copy/move the selector is the current object.
	if _, isPred := call.Preds["what"]; !isPred {
		what, err := call.StringArg("what")
		if err != nil {
			return err
		}
		if what != "insert.object" && what != op.key {
			return fmt.Errorf("tiera: copy of %q outside the current operation", what)
		}
		return op.inst.transferVersion(op.ctx, op.key, op.meta.Version, op.target, to, move, bandwidthOf(call))
	}
	// Predicate selector at insert time: scan (rare but legal).
	return op.inst.transferMatching(op.ctx, call.Preds["what"], to, move, bandwidthOf(call))
}

// Assign implements policy.Executor: insert.object.<attr> = value.
func (e *localExec) Assign(path string, v policy.Value) error {
	switch path {
	case "insert.object.dirty":
		if v.Kind != policy.ValBool {
			return fmt.Errorf("tiera: dirty must be boolean")
		}
		e.op.dirty = v.Bool
		return nil
	default:
		return fmt.Errorf("tiera: cannot assign %q", path)
	}
}

// bandwidthOf extracts an optional bandwidth argument (bytes/sec, 0 = none).
func bandwidthOf(call *policy.ActionCall) float64 {
	if v, ok := call.Arg("bandwidth"); ok && v.Kind == policy.ValRate {
		return v.Num
	}
	return 0
}

// transferVersion copies (or moves) one version's payload from the first
// tier currently holding it to the destination tier. A bandwidth cap adds
// size/bw of transfer delay. Copy to a durable tier clears the dirty bit
// (write-back completion).
func (in *Instance) transferVersion(ctx context.Context, key string, v object.Version, preferredFrom, to string, move bool, bw float64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	dst, ok := in.tiers[to]
	if !ok {
		return fmt.Errorf("tiera: no destination tier %q", to)
	}
	vk := object.VersionKey(key, v)
	from := ""
	if preferredFrom != "" && in.tiers[preferredFrom] != nil && in.tiers[preferredFrom].Has(vk) {
		from = preferredFrom
	} else {
		for _, label := range in.tierOrder {
			if in.tiers[label].Has(vk) {
				from = label
				break
			}
		}
	}
	if from == "" {
		return fmt.Errorf("tiera: no tier holds %s", vk)
	}
	if from == to {
		return nil
	}
	data, err := in.tiers[from].Get(ctx, vk)
	if err != nil {
		return err
	}
	if bw > 0 {
		in.clk.Sleep(time.Duration(float64(len(data)) / bw * float64(time.Second)))
	}
	if err := dst.Put(ctx, vk, data); err != nil {
		return err
	}
	if move {
		_ = in.tiers[from].Delete(ctx, vk)
		if err := in.objects.SetTier(key, v, to); err != nil {
			return err
		}
	}
	if !dst.Volatile() {
		_ = in.objects.SetDirty(key, v, false)
	}
	in.persistMeta(key)
	return nil
}

// transferMatching applies transferVersion to every (object, tier) pair the
// predicate matches. The predicate sees object.location bound to each tier
// currently holding the payload, so "object.location == tier2" selects the
// copy living in tier2.
func (in *Instance) transferMatching(ctx context.Context, pred policy.Predicate, to string, move bool, bw float64) error {
	matches, err := in.matchObjects(pred)
	if err != nil {
		return err
	}
	for _, m := range matches {
		if m.location == to {
			continue
		}
		if err := in.transferVersion(ctx, m.meta.Key, m.meta.Version, m.location, to, move, bw); err != nil {
			return err
		}
	}
	return nil
}

// deleteBySelector removes matching payload copies (and, when the object
// ends up nowhere, its metadata).
func (in *Instance) deleteBySelector(call *policy.ActionCall) error {
	pred, ok := call.Preds["what"]
	if !ok {
		return fmt.Errorf("tiera: delete requires a what: predicate")
	}
	matches, err := in.matchObjects(pred)
	if err != nil {
		return err
	}
	for _, m := range matches {
		vk := object.VersionKey(m.meta.Key, m.meta.Version)
		_ = in.tiers[m.location].Delete(context.Background(), vk)
		if len(in.Locations(m.meta.Key, m.meta.Version)) == 0 {
			_ = in.objects.RemoveVersion(m.meta.Key, m.meta.Version)
		}
		in.persistMeta(m.meta.Key)
	}
	return nil
}

// match is one (object version, holding tier) pair selected by a predicate.
type match struct {
	meta     object.Meta
	location string
}

// matchObjects evaluates pred once per (version, holding-tier) pair. The
// environment binds the object attributes of Sec 2.2: size, dirty,
// location, access counters, age values for cold-data policies, and
// isLatest for version garbage collection (Sec 3.2.1).
func (in *Instance) matchObjects(pred policy.Predicate) ([]match, error) {
	now := in.clk.Now()
	var out []match
	var firstErr error
	in.objects.Scan(func(m object.Meta) bool {
		vk := object.VersionKey(m.Key, m.Version)
		latest, lerr := in.objects.Latest(m.Key)
		isLatest := lerr == nil && latest.Version == m.Version
		for _, label := range in.tierOrder {
			if !in.tiers[label].Has(vk) {
				continue
			}
			env := objectEnv(m, label, now)
			env.Set("object.isLatest", policy.BoolVal(isLatest))
			okMatch, err := pred(env)
			if err != nil {
				firstErr = err
				return false
			}
			if okMatch {
				out = append(out, match{meta: m, location: label})
				break // one source location per version
			}
		}
		return true
	})
	return out, firstErr
}

// objectEnv binds an object version's attributes for predicate evaluation.
func objectEnv(m object.Meta, location string, now time.Time) *policy.MapEnv {
	env := policy.NewMapEnv()
	env.Set("object.key", policy.StringVal(m.Key))
	env.Set("object.version", policy.NumberVal(float64(m.Version)))
	env.Set("object.size", policy.SizeVal(m.Size))
	env.Set("object.dirty", policy.BoolVal(m.Dirty))
	env.Set("object.location", policy.IdentVal(location))
	env.Set("object.accessCount", policy.NumberVal(float64(m.AccessCnt)))
	env.Set("object.compressed", policy.BoolVal(m.Compressed))
	env.Set("object.encrypted", policy.BoolVal(m.Encrypted))
	// Age attributes evaluate as elapsed durations, so the paper's
	// "object.lastAccessedTime > 120 hours" reads naturally.
	env.Set("object.lastAccessedTime", policy.DurationVal(now.Sub(m.AccessedAt)))
	env.Set("object.lastModifiedTime", policy.DurationVal(now.Sub(m.ModifiedAt)))
	env.Set("object.age", policy.DurationVal(now.Sub(m.CreatedAt)))
	for _, tag := range m.Tags {
		env.Set("object.tag."+tag, policy.BoolVal(true))
	}
	return env
}

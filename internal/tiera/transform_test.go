package tiera

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/policy"
	"repro/internal/simnet"
)

func TestCompressPolicyRoundTrip(t *testing.T) {
	// A timer policy compressing everything on tier2 (cold storage).
	src := `
Tiera CompressCold(time t) {
	tier1: {name: memory, size: 1G};
	tier2: {name: s3, size: 1G};
	event(insert.into == tier1) : response {
		copy(what: insert.object, to: tier2);
	}
	event(time = t) : response {
		compress(what: object.location == tier2);
	}
}`
	spec, err := policy.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(Config{
		Name: "z", Region: simnet.USEast, Spec: spec,
		Params: map[string]policy.Value{"t": policy.DurationVal(1e9)},
		Clock:  fastClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	payload := []byte(strings.Repeat("compressible data! ", 200))
	meta, err := inst.Put(context.Background(), "doc", payload)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := inst.Tier("tier2")
	rawBefore := t2.Used()
	if err := inst.RunTimerEventsOnce(); err != nil {
		t.Fatal(err)
	}
	if t2.Used() >= rawBefore {
		t.Fatalf("tier2 usage did not shrink: %d -> %d", rawBefore, t2.Used())
	}
	m, _ := inst.Objects().GetVersion("doc", meta.Version)
	if !m.Compressed {
		t.Fatal("compressed flag not set")
	}
	// Reads reverse the transform transparently.
	got, _, err := inst.Get(context.Background(), "doc")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get after compress: %d bytes, %v", len(got), err)
	}
	// Idempotent: a second sweep must not double-compress.
	if err := inst.RunTimerEventsOnce(); err != nil {
		t.Fatal(err)
	}
	got, _, err = inst.Get(context.Background(), "doc")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatal("double compression corrupted data")
	}
}

func TestEncryptPolicy(t *testing.T) {
	src := `
Tiera EncryptAll {
	tier1: {name: ebs-ssd, size: 1G};
	event(insert.into) : response {
		store(what: insert.object, to: tier1);
		encrypt(what: insert.object);
	}
}`
	spec, err := policy.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(Config{Name: "e", Region: simnet.USEast, Spec: spec, Clock: fastClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	secret := []byte("attack at dawn")
	meta, err := inst.Put(context.Background(), "plan", secret)
	if err != nil {
		t.Fatal(err)
	}
	// The tier holds ciphertext, not the plaintext.
	t1, _ := inst.Tier("tier1")
	vk := "plan@v1"
	raw, err := t1.Get(context.Background(), vk)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, secret) {
		t.Fatal("tier holds plaintext after encrypt policy")
	}
	m, _ := inst.Objects().GetVersion("plan", meta.Version)
	if !m.Encrypted {
		t.Fatal("encrypted flag not set")
	}
	// Application reads the original bytes.
	got, _, err := inst.Get(context.Background(), "plan")
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestCompressThenEncrypt(t *testing.T) {
	src := `
Tiera Both {
	tier1: {name: ebs-ssd, size: 1G};
	event(insert.into) : response {
		store(what: insert.object, to: tier1);
		compress(what: insert.object);
		encrypt(what: insert.object);
	}
}`
	spec, _ := policy.Parse(src)
	inst, err := New(Config{Name: "b", Region: simnet.USEast, Spec: spec, Clock: fastClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	payload := []byte(strings.Repeat("both transforms ", 100))
	if _, err := inst.Put(context.Background(), "k", payload); err != nil {
		t.Fatal(err)
	}
	got, m, err := inst.Get(context.Background(), "k")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: %v", err)
	}
	if !m.Compressed || !m.Encrypted {
		t.Fatalf("flags = %+v", m)
	}
}

func TestCompressAfterEncryptRejected(t *testing.T) {
	src := `
Tiera Wrong {
	tier1: {name: ebs-ssd, size: 1G};
	event(insert.into) : response {
		store(what: insert.object, to: tier1);
		encrypt(what: insert.object);
		compress(what: insert.object);
	}
}`
	spec, _ := policy.Parse(src)
	inst, err := New(Config{Name: "w", Region: simnet.USEast, Spec: spec, Clock: fastClock()})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if _, err := inst.Put(context.Background(), "k", []byte("data")); err == nil {
		t.Fatal("compress-after-encrypt should be rejected")
	}
}

func TestTransformPrimitives(t *testing.T) {
	key := make([]byte, 32)
	data := []byte(strings.Repeat("x", 1000))
	// Compression round trip.
	c, err := compressPayload(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) >= len(data) {
		t.Fatal("compression did not shrink repetitive data")
	}
	d, err := decompressPayload(c)
	if err != nil || !bytes.Equal(d, data) {
		t.Fatal("decompress mismatch")
	}
	if _, err := decompressPayload([]byte("not gzip")); err == nil {
		t.Fatal("garbage decompress should fail")
	}
	// Encryption round trip.
	ct, err := encryptPayload(key, data)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := decryptPayload(key, ct)
	if err != nil || !bytes.Equal(pt, data) {
		t.Fatal("decrypt mismatch")
	}
	// Tampering detected.
	ct[len(ct)-1] ^= 0xFF
	if _, err := decryptPayload(key, ct); err == nil {
		t.Fatal("tampered ciphertext accepted")
	}
	if _, err := decryptPayload(key, []byte("short")); err == nil {
		t.Fatal("short ciphertext accepted")
	}
	wrongKey := make([]byte, 32)
	wrongKey[0] = 1
	ct2, _ := encryptPayload(key, data)
	if _, err := decryptPayload(wrongKey, ct2); err == nil {
		t.Fatal("wrong key accepted")
	}
}

// The paper's Sec 2.2 tag example: objects tagged "tmp" go to inexpensive
// volatile storage, everything else to the durable tier.
func TestTagClassPolicy(t *testing.T) {
	src := `
Tiera TagClasses(time t) {
	tier1: {name: ebs-ssd, size: 1G};
	tier2: {name: memory, size: 1G};
	event(time = t) : response {
		move(what: object.tag.tmp == true, to: tier2);
	}
}`
	spec, err := policy.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(Config{
		Name: "tags", Region: simnet.USEast, Spec: spec,
		Params: map[string]policy.Value{"t": policy.DurationVal(1e9)},
		Clock:  fastClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	tmpMeta, err := inst.PutTagged(context.Background(), "scratch.dat", []byte("temp"), []string{"tmp"})
	if err != nil {
		t.Fatal(err)
	}
	keepMeta, err := inst.Put(context.Background(), "results.dat", []byte("keep"))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.RunTimerEventsOnce(); err != nil {
		t.Fatal(err)
	}
	if locs := inst.Locations("scratch.dat", tmpMeta.Version); len(locs) != 1 || locs[0] != "tier2" {
		t.Fatalf("tmp object locations = %v, want [tier2]", locs)
	}
	if locs := inst.Locations("results.dat", keepMeta.Version); len(locs) != 1 || locs[0] != "tier1" {
		t.Fatalf("untagged object locations = %v, want [tier1]", locs)
	}
}

// Version garbage collection (Sec 3.2.1: "old versions of objects will be
// stored until they are required to be garbage collected in the policy
// specification"): a monitor deletes superseded versions older than an
// hour while keeping the latest.
func TestVersionGarbageCollectionPolicy(t *testing.T) {
	src := `
Tiera VersionGC {
	tier1: {name: ebs-ssd, size: 1G};
	event(object.lastModifiedTime > 1h) : response {
		delete(what: object.isLatest == false);
	}
}`
	spec, err := policy.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	clk := clockSim()
	inst, err := New(Config{Name: "gc", Region: simnet.USEast, Spec: spec, Clock: clk.clk})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	put := func(key, val string) {
		clk.run(t, func() error { _, err := inst.Put(context.Background(), key, []byte(val)); return err })
	}
	put("doc", "v1")
	put("doc", "v2")
	clk.clk.Advance(2 * time.Hour)
	put("doc", "v3") // recent: survives along with being latest
	clk.run(t, func() error { return inst.RunObjectMonitorsOnce() })

	vs, err := inst.VersionList("doc")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0] != 3 {
		t.Fatalf("versions after GC = %v, want [3]", vs)
	}
	var data []byte
	clk.run(t, func() error {
		var err error
		data, _, err = inst.Get(context.Background(), "doc")
		return err
	})
	if string(data) != "v3" {
		t.Fatalf("latest = %q", data)
	}
}

// clockRunner pairs a sim clock with an advancing helper.
type clockRunner struct{ clk *clock.Sim }

func clockSim() *clockRunner { return &clockRunner{clk: clock.NewSim(time.Time{})} }

func (c *clockRunner) run(t *testing.T, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	advanceUntil(t, c.clk, done)
}

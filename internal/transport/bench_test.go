package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"testing"

	"repro/internal/clock"
	"repro/internal/simnet"
)

func BenchmarkFabricCallSameRegion(b *testing.B) {
	fab := NewFabric(simnet.New(clock.NewScaled(1e6)))
	defer fab.Close()
	srv, err := fab.NewEndpoint("srv", simnet.USEast)
	if err != nil {
		b.Fatal(err)
	}
	srv.Serve(func(_ context.Context, _ string, p []byte) ([]byte, error) { return p, nil })
	cli, err := fab.NewEndpoint("cli", simnet.USEast)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(context.Background(), "srv", "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, _ string, p []byte) ([]byte, error) { return p, nil })
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := DialTCP(srv.Addr())
	defer cli.Close()
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(context.Background(), "", "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncode compares the pooled Encode/Decode path against a naive
// fresh-buffer implementation: the pooled variant should show fewer
// allocs/op since the scratch bytes.Buffer and bytes.Reader are reused.
func BenchmarkEncode(b *testing.B) {
	type msg struct {
		Key  string
		Data []byte
	}
	in := msg{Key: "object-key", Data: make([]byte, 4096)}

	b.Run("pooled", func(b *testing.B) {
		b.SetBytes(4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			raw, err := Encode(in)
			if err != nil {
				b.Fatal(err)
			}
			var out msg
			if err := Decode(raw, &out); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("unpooled", func(b *testing.B) {
		b.SetBytes(4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(in); err != nil {
				b.Fatal(err)
			}
			raw := make([]byte, buf.Len())
			copy(raw, buf.Bytes())
			var out msg
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTCPPipelined measures throughput with many concurrent callers
// on one multiplexed connection — contrast with BenchmarkTCPRoundTrip's
// single serial caller.
func BenchmarkTCPPipelined(b *testing.B) {
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, _ string, p []byte) ([]byte, error) { return p, nil })
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := DialTCP(srv.Addr())
	defer cli.Close()
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cli.Call(context.Background(), "", "echo", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGobEncodeDecode(b *testing.B) {
	type msg struct {
		Key  string
		Data []byte
	}
	in := msg{Key: "object-key", Data: make([]byte, 4096)}
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw, err := Encode(in)
		if err != nil {
			b.Fatal(err)
		}
		var out msg
		if err := Decode(raw, &out); err != nil {
			b.Fatal(err)
		}
	}
}

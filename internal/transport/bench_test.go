package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"testing"

	"repro/internal/clock"
	"repro/internal/simnet"
	"repro/internal/wire"
)

func BenchmarkFabricCallSameRegion(b *testing.B) {
	fab := NewFabric(simnet.New(clock.NewScaled(1e6)))
	defer fab.Close()
	srv, err := fab.NewEndpoint("srv", simnet.USEast)
	if err != nil {
		b.Fatal(err)
	}
	srv.Serve(func(_ context.Context, _ string, p []byte) ([]byte, error) { return p, nil })
	cli, err := fab.NewEndpoint("cli", simnet.USEast)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(context.Background(), "srv", "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, _ string, p []byte) ([]byte, error) { return p, nil })
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := DialTCP(srv.Addr())
	defer cli.Close()
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(context.Background(), "", "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMsg mirrors the shape of the hot put/get messages. The transport
// package cannot import internal/wiera (cycle), so the codec comparison
// here uses this local type implementing the wire interfaces the same way
// wirecodec.go does; the real-message numbers live in internal/wiera's
// BenchmarkEncode.
type benchMsg struct {
	Key  string
	Data []byte
}

func (m benchMsg) WireTag() byte { return 0x7E }
func (m benchMsg) WireSize() int {
	return wire.SizeString(m.Key) + wire.SizeBytes(m.Data)
}
func (m benchMsg) AppendWire(dst []byte) []byte {
	dst = wire.AppendString(dst, m.Key)
	return wire.AppendBytes(dst, m.Data)
}
func (m *benchMsg) UnmarshalWire(body []byte) error {
	r := wire.NewReader(body)
	r.StringInto(&m.Key)
	m.Data = r.Bytes()
	return r.Close()
}

// BenchmarkEncode compares the two codecs side by side on the same
// message shape — gob (pooled scratch buffers and a naive fresh-buffer
// variant) against the hand-rolled binary wire codec (via Encode's
// dispatch, and via AppendEncode into a reused buffer, the zero-alloc
// steady state). Each iteration is one encode+decode round trip.
func BenchmarkEncode(b *testing.B) {
	in := benchMsg{Key: "object-key", Data: make([]byte, 4096)}

	b.Run("gob/pooled", func(b *testing.B) {
		b.SetBytes(4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			raw, err := EncodeWith(CodecGob, in)
			if err != nil {
				b.Fatal(err)
			}
			var out benchMsg
			if err := Decode(raw, &out); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("gob/unpooled", func(b *testing.B) {
		b.SetBytes(4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(in); err != nil {
				b.Fatal(err)
			}
			raw := make([]byte, buf.Len())
			copy(raw, buf.Bytes())
			var out benchMsg
			if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("wire", func(b *testing.B) {
		b.SetBytes(4096)
		b.ReportAllocs()
		var out benchMsg
		for i := 0; i < b.N; i++ {
			raw, err := Encode(in) // CodecAuto dispatches to the wire codec
			if err != nil {
				b.Fatal(err)
			}
			if err := Decode(raw, &out); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("wire/append", func(b *testing.B) {
		b.SetBytes(4096)
		b.ReportAllocs()
		buf := make([]byte, 0, wire.HeaderLen+in.WireSize())
		var out benchMsg
		// Hoist the interface conversions: real call sites already hold
		// the message as `any` and the destination as a pointer.
		var inAny any = in
		var outAny any = &out
		for i := 0; i < b.N; i++ {
			raw, ok := AppendEncode(CodecAuto, buf[:0], inAny)
			if !ok {
				b.Fatal("wire fast path not taken")
			}
			if err := Decode(raw, outAny); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTCPPipelined measures throughput with many concurrent callers
// on one multiplexed connection — contrast with BenchmarkTCPRoundTrip's
// single serial caller.
func BenchmarkTCPPipelined(b *testing.B) {
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, _ string, p []byte) ([]byte, error) { return p, nil })
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := DialTCP(srv.Addr())
	defer cli.Close()
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cli.Call(context.Background(), "", "echo", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGobEncodeDecode pins the gob-vs-wire comparison in one
// benchmark with shared sub-benchmark names, so `benchstat` and
// scripts/bench_codec.sh can diff the codecs from a single run.
func BenchmarkGobEncodeDecode(b *testing.B) {
	in := benchMsg{Key: "object-key", Data: make([]byte, 4096)}
	for _, codec := range []struct {
		name string
		c    Codec
	}{{"gob", CodecGob}, {"wire", CodecAuto}} {
		b.Run(codec.name, func(b *testing.B) {
			b.SetBytes(4096)
			b.ReportAllocs()
			var out benchMsg
			for i := 0; i < b.N; i++ {
				raw, err := EncodeWith(codec.c, in)
				if err != nil {
					b.Fatal(err)
				}
				if err := Decode(raw, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// wireRequest/wireResponse are the gob frame types of the TCP transport.
// Frames are tagged with a sequence ID so one connection carries many
// in-flight calls: the client stamps Seq, the server echoes it on the
// matching response, and responses may arrive in any order. The conn's gob
// encoder/decoder pair persists for its lifetime, so type descriptors
// cross the wire once per connection, not once per frame.
//
// The Payload may carry a telemetry trace envelope exactly as on the
// Fabric transport — the server unwraps it before dispatch.
type wireRequest struct {
	Seq     uint64
	Method  string
	Payload []byte
}

type wireResponse struct {
	Seq     uint64
	Payload []byte
	Err     string
}

// clientWindow bounds how many calls a client keeps in flight on one
// multiplexed connection; excess callers block until a slot frees.
const clientWindow = 128

// serverWindow bounds how many handlers one server connection runs
// concurrently (memory backstop against a misbehaving client).
const serverWindow = 256

// TCPServer serves transport handlers on a real TCP listener. It is the
// deployment-grade counterpart of the in-process Fabric, used by cmd/wiera.
// Requests on one connection are served concurrently (each in its own
// goroutine, bounded by serverWindow); responses are written back tagged
// with the request's sequence ID, in completion order.
type TCPServer struct {
	ln      net.Listener
	handler Handler
	metrics *telemetry.Registry
	tracer  *telemetry.Tracer

	rpcLatency  *telemetry.HistogramVec
	rpcCalls    *telemetry.CounterVec
	rpcErrors   *telemetry.CounterVec
	rpcInflight *telemetry.GaugeVec
	rpcBytesIn  *telemetry.CounterVec
	rpcBytesOut *telemetry.CounterVec

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// TCPServerOption configures ListenTCP.
type TCPServerOption func(*TCPServer)

// WithServerTelemetry makes the server record per-method RPC metrics into
// reg and continue inbound trace envelopes on tr (either may be nil).
func WithServerTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) TCPServerOption {
	return func(s *TCPServer) {
		s.metrics = reg
		s.tracer = tr
	}
}

// ListenTCP starts a server on addr ("host:port", empty port picks one) and
// serves h on every accepted connection. Connections are persistent: each
// carries a stream of tagged request/response frames served concurrently.
func ListenTCP(addr string, h Handler, opts ...TCPServerOption) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &TCPServer{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	for _, o := range opts {
		o(s)
	}
	if s.metrics != nil {
		s.rpcLatency = s.metrics.Histogram("rpc_server_seconds",
			"Server-side RPC service time.", "method", "region")
		s.rpcCalls = s.metrics.Counter("rpc_calls_total",
			"RPCs dispatched to a handler.", "method", "region")
		s.rpcErrors = s.metrics.Counter("rpc_errors_total",
			"RPCs whose handler returned an error.", "method", "region")
		s.rpcInflight = s.metrics.Gauge("rpc_inflight",
			"RPCs currently executing in a handler.", "method", "region")
		s.rpcBytesIn = s.metrics.Counter("rpc_bytes_in_total",
			"Request payload bytes received, per RPC method.", "method", "region")
		s.rpcBytesOut = s.metrics.Counter("rpc_bytes_out_total",
			"Response payload bytes sent, per RPC method.", "method", "region")
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// tcpRegionLabel labels TCP-served RPC metrics; the daemon's frontend is
// not region-pinned the way Fabric endpoints are.
const tcpRegionLabel = "tcp"

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	var (
		handlers sync.WaitGroup
		writeMu  sync.Mutex // guards enc + bw: responses interleave frame-atomically
	)
	defer func() {
		conn.Close()
		handlers.Wait() // late handlers must not write into the next conn's map slot
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(bw)
	sem := make(chan struct{}, serverWindow)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection
		}
		sem <- struct{}{}
		handlers.Add(1)
		go func(req wireRequest) {
			defer handlers.Done()
			defer func() { <-sem }()
			resp := wireResponse{Seq: req.Seq}
			out, err := s.serve(req.Method, req.Payload)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Payload = out
			}
			writeMu.Lock()
			werr := enc.Encode(&resp)
			if werr == nil {
				werr = bw.Flush()
			}
			writeMu.Unlock()
			if werr != nil {
				conn.Close() // wake the read loop; remaining handlers fail fast
			}
		}(req)
	}
}

// serve dispatches one frame: unwrap the trace envelope, open a linked
// rpc.server span when the client sent one, invoke the handler, record
// metrics.
func (s *TCPServer) serve(method string, payload []byte) ([]byte, error) {
	remote, inner := telemetry.UnwrapPayload(payload)
	ctx := context.Background()
	var span *telemetry.Span
	if remote.Valid() && s.tracer != nil {
		span = s.tracer.StartRemote(remote, "rpc.server")
		span.SetAttr("method", method)
		span.SetAttr("transport", "tcp")
		ctx = telemetry.ContextWithSpan(ctx, span)
	}
	var inflight *telemetry.Gauge
	if s.metrics != nil {
		inflight = s.rpcInflight.With(method, tcpRegionLabel)
		inflight.Add(1)
	}
	start := time.Now()
	out, err := s.handler(ctx, method, inner)
	if s.metrics != nil {
		inflight.Add(-1)
		s.rpcLatency.With(method, tcpRegionLabel).Record(time.Since(start))
		s.rpcCalls.With(method, tcpRegionLabel).Inc()
		if err != nil {
			s.rpcErrors.With(method, tcpRegionLabel).Inc()
		}
		s.rpcBytesIn.With(method, tcpRegionLabel).Add(int64(len(inner)))
		s.rpcBytesOut.With(method, tcpRegionLabel).Add(int64(len(out)))
	}
	span.SetError(err)
	span.End()
	return out, err
}

// Close stops accepting and closes all live connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPClient issues calls to one TCPServer over a single multiplexed
// connection: every in-flight call gets a sequence ID, frames share the
// connection's persistent gob streams, and a demux goroutine routes each
// tagged response to its waiting caller. Concurrency is bounded by
// clientWindow; callers past the window block until a slot frees. Safe for
// concurrent use. A broken connection fails all its in-flight calls and is
// replaced on the next Call.
type TCPClient struct {
	addr string

	mu     sync.Mutex
	cur    *muxConn
	dials  int // connections dialed over the client's lifetime (tests)
	closed bool
}

// muxConn is one multiplexed connection: a shared encoder guarded by
// sendMu, a demux goroutine draining responses, and per-sequence completion
// channels.
type muxConn struct {
	conn   net.Conn
	window chan struct{} // in-flight slots

	sendMu sync.Mutex // guards enc + bw
	enc    *gob.Encoder
	bw     *bufio.Writer

	mu      sync.Mutex
	nextSeq uint64
	pending map[uint64]chan wireResponse
	dead    bool
	err     error // why the conn died (set once, before channels close)
}

// DialTCP returns a client for the server at addr. The connection is
// opened lazily on the first Call.
func DialTCP(addr string) *TCPClient {
	return &TCPClient{addr: addr}
}

// Call implements a single request/response exchange over the shared
// multiplexed connection. The dst parameter is ignored (a TCPClient is
// bound to one server); it exists so TCPClient can satisfy call sites
// written against Caller. A trace span carried by ctx is propagated to the
// server inside the payload.
func (c *TCPClient) Call(ctx context.Context, _ string, method string, payload []byte) ([]byte, error) {
	if sp := telemetry.SpanFromContext(ctx); sp != nil {
		payload = telemetry.WrapPayload(sp.Context(), payload)
	}
	mc, err := c.acquire()
	if err != nil {
		return nil, err
	}
	resp, err := mc.roundTrip(method, payload)
	if err != nil {
		c.discard(mc)
		return nil, err
	}
	if resp.Err != "" {
		return nil, RemoteError{Msg: resp.Err}
	}
	return resp.Payload, nil
}

// acquire returns the live multiplexed connection, dialing one if needed.
func (c *TCPClient) acquire() (*muxConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if mc := c.cur; mc != nil && !mc.isDead() {
		c.mu.Unlock()
		return mc, nil
	}
	c.mu.Unlock()

	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", c.addr, err)
	}
	bw := bufio.NewWriter(conn)
	mc := &muxConn{
		conn:    conn,
		window:  make(chan struct{}, clientWindow),
		enc:     gob.NewEncoder(bw),
		bw:      bw,
		pending: make(map[uint64]chan wireResponse),
	}
	dec := gob.NewDecoder(bufio.NewReader(conn))
	go mc.demux(dec)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		mc.fail(ErrClosed)
		return nil, ErrClosed
	}
	if c.cur != nil && !c.cur.isDead() {
		// A concurrent caller won the dial race; use its connection.
		cur := c.cur
		c.mu.Unlock()
		mc.fail(ErrClosed)
		return cur, nil
	}
	c.cur = mc
	c.dials++
	c.mu.Unlock()
	return mc, nil
}

// discard drops mc after a transport error so the next Call redials.
func (c *TCPClient) discard(mc *muxConn) {
	mc.fail(fmt.Errorf("transport: connection discarded"))
	c.mu.Lock()
	if c.cur == mc {
		c.cur = nil
	}
	c.mu.Unlock()
}

// Dials reports how many connections the client has opened (test hook for
// asserting connection reuse under concurrent calls).
func (c *TCPClient) Dials() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dials
}

// Close fails all in-flight calls and closes the connection.
func (c *TCPClient) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	mc := c.cur
	c.cur = nil
	c.mu.Unlock()
	if mc != nil {
		mc.fail(ErrClosed)
	}
}

// roundTrip sends one tagged frame and blocks until its response is
// demuxed back (or the connection dies).
func (mc *muxConn) roundTrip(method string, payload []byte) (*wireResponse, error) {
	mc.window <- struct{}{}
	defer func() { <-mc.window }()

	ch := make(chan wireResponse, 1)
	mc.mu.Lock()
	if mc.dead {
		err := mc.err
		mc.mu.Unlock()
		return nil, err
	}
	mc.nextSeq++
	seq := mc.nextSeq
	mc.pending[seq] = ch
	mc.mu.Unlock()

	mc.sendMu.Lock()
	err := mc.enc.Encode(wireRequest{Seq: seq, Method: method, Payload: payload})
	if err == nil {
		err = mc.bw.Flush()
	}
	mc.sendMu.Unlock()
	if err != nil {
		mc.mu.Lock()
		delete(mc.pending, seq)
		mc.mu.Unlock()
		mc.fail(fmt.Errorf("transport: send: %w", err))
		return nil, fmt.Errorf("transport: send: %w", err)
	}

	resp, ok := <-ch
	if !ok {
		mc.mu.Lock()
		err := mc.err
		mc.mu.Unlock()
		return nil, err
	}
	return &resp, nil
}

// demux drains tagged responses off the connection and completes the
// matching callers. A decode error (EOF, server close, corrupt stream)
// fails every pending call.
func (mc *muxConn) demux(dec *gob.Decoder) {
	for {
		var resp wireResponse
		if err := dec.Decode(&resp); err != nil {
			mc.fail(fmt.Errorf("transport: connection closed by server: %w", err))
			return
		}
		mc.mu.Lock()
		ch := mc.pending[resp.Seq]
		delete(mc.pending, resp.Seq)
		mc.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// isDead reports whether the connection has failed.
func (mc *muxConn) isDead() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.dead
}

// fail marks the connection dead with err, closes it, and completes every
// pending call with the failure (idempotent; the first error wins).
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return
	}
	mc.dead = true
	mc.err = err
	pending := mc.pending
	mc.pending = make(map[uint64]chan wireResponse)
	mc.mu.Unlock()
	mc.conn.Close()
	for _, ch := range pending {
		close(ch)
	}
}

package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// wireRequest/wireResponse are the gob frame types of the TCP transport.
// The Payload may carry a telemetry trace envelope exactly as on the
// Fabric transport — the server unwraps it before dispatch.
type wireRequest struct {
	Method  string
	Payload []byte
}

type wireResponse struct {
	Payload []byte
	Err     string
}

// TCPServer serves transport handlers on a real TCP listener. It is the
// deployment-grade counterpart of the in-process Fabric, used by cmd/wiera.
type TCPServer struct {
	ln      net.Listener
	handler Handler
	metrics *telemetry.Registry
	tracer  *telemetry.Tracer

	rpcLatency *telemetry.HistogramVec
	rpcCalls   *telemetry.CounterVec
	rpcErrors  *telemetry.CounterVec

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// TCPServerOption configures ListenTCP.
type TCPServerOption func(*TCPServer)

// WithServerTelemetry makes the server record per-method RPC metrics into
// reg and continue inbound trace envelopes on tr (either may be nil).
func WithServerTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) TCPServerOption {
	return func(s *TCPServer) {
		s.metrics = reg
		s.tracer = tr
	}
}

// ListenTCP starts a server on addr ("host:port", empty port picks one) and
// serves h on every accepted connection. Connections are persistent: each
// carries a stream of request/response frames served sequentially.
func ListenTCP(addr string, h Handler, opts ...TCPServerOption) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &TCPServer{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
	for _, o := range opts {
		o(s)
	}
	if s.metrics != nil {
		s.rpcLatency = s.metrics.Histogram("rpc_server_seconds",
			"Server-side RPC service time.", "method", "region")
		s.rpcCalls = s.metrics.Counter("rpc_calls_total",
			"RPCs dispatched to a handler.", "method", "region")
		s.rpcErrors = s.metrics.Counter("rpc_errors_total",
			"RPCs whose handler returned an error.", "method", "region")
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// tcpRegionLabel labels TCP-served RPC metrics; the daemon's frontend is
// not region-pinned the way Fabric endpoints are.
const tcpRegionLabel = "tcp"

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(bw)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken connection
		}
		var resp wireResponse
		out, err := s.serve(req.Method, req.Payload)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Payload = out
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// serve dispatches one frame: unwrap the trace envelope, open a linked
// rpc.server span when the client sent one, invoke the handler, record
// metrics.
func (s *TCPServer) serve(method string, payload []byte) ([]byte, error) {
	remote, inner := telemetry.UnwrapPayload(payload)
	ctx := context.Background()
	var span *telemetry.Span
	if remote.Valid() && s.tracer != nil {
		span = s.tracer.StartRemote(remote, "rpc.server")
		span.SetAttr("method", method)
		span.SetAttr("transport", "tcp")
		ctx = telemetry.ContextWithSpan(ctx, span)
	}
	start := time.Now()
	out, err := s.handler(ctx, method, inner)
	if s.metrics != nil {
		s.rpcLatency.With(method, tcpRegionLabel).Record(time.Since(start))
		s.rpcCalls.With(method, tcpRegionLabel).Inc()
		if err != nil {
			s.rpcErrors.With(method, tcpRegionLabel).Inc()
		}
	}
	span.SetError(err)
	span.End()
	return out, err
}

// Close stops accepting and closes all live connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// TCPClient issues calls to one TCPServer over a pool of persistent
// connections. Safe for concurrent use; concurrent calls use separate
// pooled connections.
type TCPClient struct {
	addr string

	mu     sync.Mutex
	idle   []*tcpConn
	closed bool
}

type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	bw   *bufio.Writer
}

// DialTCP returns a client for the server at addr. Connections are opened
// lazily.
func DialTCP(addr string) *TCPClient {
	return &TCPClient{addr: addr}
}

// Call implements a single request/response exchange. The dst parameter is
// ignored (a TCPClient is bound to one server); it exists so TCPClient can
// satisfy call sites written against Caller. A trace span carried by ctx is
// propagated to the server inside the payload.
func (c *TCPClient) Call(ctx context.Context, _ string, method string, payload []byte) ([]byte, error) {
	if sp := telemetry.SpanFromContext(ctx); sp != nil {
		payload = telemetry.WrapPayload(sp.Context(), payload)
	}
	tc, err := c.acquire()
	if err != nil {
		return nil, err
	}
	resp, err := tc.roundTrip(method, payload)
	if err != nil {
		tc.conn.Close() // connection state unknown; drop it
		return nil, err
	}
	c.release(tc)
	if resp.Err != "" {
		return nil, RemoteError{Msg: resp.Err}
	}
	return resp.Payload, nil
}

func (tc *tcpConn) roundTrip(method string, payload []byte) (*wireResponse, error) {
	if err := tc.enc.Encode(wireRequest{Method: method, Payload: payload}); err != nil {
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	if err := tc.bw.Flush(); err != nil {
		return nil, fmt.Errorf("transport: flush: %w", err)
	}
	var resp wireResponse
	if err := tc.dec.Decode(&resp); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("transport: connection closed by server")
		}
		return nil, fmt.Errorf("transport: recv: %w", err)
	}
	return &resp, nil
}

func (c *TCPClient) acquire() (*tcpConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		tc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return tc, nil
	}
	c.mu.Unlock()
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", c.addr, err)
	}
	bw := bufio.NewWriter(conn)
	return &tcpConn{
		conn: conn,
		enc:  gob.NewEncoder(bw),
		dec:  gob.NewDecoder(bufio.NewReader(conn)),
		bw:   bw,
	}, nil
}

func (c *TCPClient) release(tc *tcpConn) {
	c.mu.Lock()
	if c.closed || len(c.idle) >= 8 {
		c.mu.Unlock()
		tc.conn.Close()
		return
	}
	c.idle = append(c.idle, tc)
	c.mu.Unlock()
}

// Close closes all pooled connections.
func (c *TCPClient) Close() {
	c.mu.Lock()
	c.closed = true
	for _, tc := range c.idle {
		tc.conn.Close()
	}
	c.idle = nil
	c.mu.Unlock()
}

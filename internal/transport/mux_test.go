package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTCPMuxNoCrossWiring storms one client with concurrent calls and
// asserts every response matches its own request — out-of-order completion
// on the shared connection must never hand caller A caller B's payload.
func TestTCPMuxNoCrossWiring(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, method string, payload []byte) ([]byte, error) {
		// Reverse-ish delay: later requests finish first, forcing the
		// demux path to route out-of-order responses.
		if len(payload)%2 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		return []byte(method + ":" + string(payload)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := DialTCP(srv.Addr())
	defer client.Close()

	const callers = 64
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				req := fmt.Sprintf("caller-%d-round-%d", id, r)
				resp, err := client.Call(context.Background(), "", "echo", []byte(req))
				if err != nil {
					errs <- err
					return
				}
				if string(resp) != "echo:"+req {
					errs <- fmt.Errorf("cross-wired response: sent %q, got %q", req, resp)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestTCPMuxSingleConnection asserts the concurrent storm above rode a
// single multiplexed connection — the whole point of tagged frames is that
// concurrency no longer costs a conn per in-flight call.
func TestTCPMuxSingleConnection(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, _ string, payload []byte) ([]byte, error) {
		time.Sleep(time.Millisecond)
		return payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := DialTCP(srv.Addr())
	defer client.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := client.Call(context.Background(), "", "m", []byte{byte(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if d := client.Dials(); d != 1 {
		t.Fatalf("dials = %d, want 1 (multiplexed reuse)", d)
	}
}

// TestTCPMuxConnSurvivesRemoteError checks a handler error is delivered as
// RemoteError without poisoning the shared connection for other callers.
func TestTCPMuxConnSurvivesRemoteError(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, method string, _ []byte) ([]byte, error) {
		if method == "fail" {
			return nil, errors.New("handler boom")
		}
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := DialTCP(srv.Addr())
	defer client.Close()

	if _, err := client.Call(context.Background(), "", "fail", nil); err == nil {
		t.Fatal("want RemoteError")
	} else {
		var re RemoteError
		if !errors.As(err, &re) || re.Msg != "handler boom" {
			t.Fatalf("err = %v", err)
		}
	}
	if resp, err := client.Call(context.Background(), "", "ok", nil); err != nil || string(resp) != "ok" {
		t.Fatalf("call after RemoteError: resp=%q err=%v", resp, err)
	}
	if d := client.Dials(); d != 1 {
		t.Fatalf("dials = %d, want 1 (RemoteError must not discard the conn)", d)
	}
}

// TestTCPMuxCloseWithInflight shuts the client down while calls are
// blocked in handlers; every in-flight caller must get an error promptly
// instead of hanging on an orphaned completion channel.
func TestTCPMuxCloseWithInflight(t *testing.T) {
	release := make(chan struct{})
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, _ string, payload []byte) ([]byte, error) {
		<-release
		return payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(release)

	client := DialTCP(srv.Addr())
	const inflight = 16
	started := make(chan struct{}, inflight)
	done := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			started <- struct{}{}
			_, err := client.Call(context.Background(), "", "hang", nil)
			done <- err
		}()
	}
	for i := 0; i < inflight; i++ {
		<-started
	}
	time.Sleep(10 * time.Millisecond) // let the calls hit the wire
	client.Close()
	for i := 0; i < inflight; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("in-flight call returned nil error after Close")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight call hung after Close")
		}
	}
	if _, err := client.Call(context.Background(), "", "m", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after Close: err = %v, want ErrClosed", err)
	}
}

// TestTCPMuxServerCloseFailsInflight mirrors the client-side test from the
// server's side: killing the server must fail blocked callers, and a later
// call must redial-and-fail rather than deadlock.
func TestTCPMuxServerCloseFailsInflight(t *testing.T) {
	block := make(chan struct{})
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, _ string, _ []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	client := DialTCP(srv.Addr())
	defer client.Close()
	done := make(chan error, 1)
	go func() {
		_, err := client.Call(context.Background(), "", "hang", nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	// Close drains gracefully (waits for in-flight handlers), so run it
	// concurrently: killing the conns must fail the blocked caller first.
	closed := make(chan struct{})
	go func() { srv.Close(); close(closed) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight call survived server Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung after server Close")
	}
	close(block) // release the handler so Close can finish draining
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("server Close did not finish after handlers drained")
	}
}

// TestTCPMuxPipelining proves >1 request rides the connection at once: with
// a handler that sleeps `d`, issuing N concurrent calls must take far less
// than N*d. The serial lower bound is compared against the measured
// concurrent wall time with a 3x margin, matching the acceptance criterion.
func TestTCPMuxPipelining(t *testing.T) {
	const handlerDelay = 20 * time.Millisecond
	const calls = 16
	var inflight, peak atomic.Int64
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, _ string, _ []byte) ([]byte, error) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(handlerDelay)
		inflight.Add(-1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := DialTCP(srv.Addr())
	defer client.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Call(context.Background(), "", "sleep", nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	serial := time.Duration(calls) * handlerDelay // 320ms if one-at-a-time
	if elapsed > serial/3 {
		t.Fatalf("concurrent wall time %v exceeds serial/3 (%v): connection is not pipelined", elapsed, serial/3)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak in-flight on one connection = %d, want >1", p)
	}
	if d := client.Dials(); d != 1 {
		t.Fatalf("dials = %d, want 1", d)
	}
}

// TestTCPMuxWindowBound checks the client's in-flight window applies
// backpressure instead of letting unbounded callers pile onto the wire.
func TestTCPMuxWindowBound(t *testing.T) {
	release := make(chan struct{})
	var inflight, peak atomic.Int64
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, _ string, _ []byte) ([]byte, error) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		<-release
		inflight.Add(-1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := DialTCP(srv.Addr())
	defer client.Close()

	const callers = clientWindow + 32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client.Call(context.Background(), "", "hold", nil)
		}()
	}
	// Give callers time to saturate the window, then release everything.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if p := peak.Load(); p > clientWindow {
		t.Fatalf("peak in-flight %d exceeds clientWindow %d", p, clientWindow)
	}
}

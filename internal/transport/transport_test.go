package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/simnet"
)

func newFabric() *Fabric {
	// Scaled clock keeps WAN latencies tiny in real time.
	return NewFabric(simnet.New(clock.NewScaled(10000)))
}

func TestFabricCallRoundTrip(t *testing.T) {
	f := newFabric()
	defer f.Close()
	server, err := f.NewEndpoint("server", simnet.USEast)
	if err != nil {
		t.Fatal(err)
	}
	server.Serve(func(_ context.Context, method string, payload []byte) ([]byte, error) {
		return []byte("echo:" + method + ":" + string(payload)), nil
	})
	client, err := f.NewEndpoint("client", simnet.USWest)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Call(context.Background(), "server", "ping", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:ping:hi" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestFabricDuplicateName(t *testing.T) {
	f := newFabric()
	defer f.Close()
	if _, err := f.NewEndpoint("a", simnet.USEast); err != nil {
		t.Fatal(err)
	}
	if _, err := f.NewEndpoint("a", simnet.USWest); err == nil {
		t.Fatal("duplicate endpoint name should error")
	}
}

func TestFabricUnknownDestination(t *testing.T) {
	f := newFabric()
	defer f.Close()
	c, _ := f.NewEndpoint("c", simnet.USEast)
	if _, err := c.Call(context.Background(), "ghost", "m", nil); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestFabricNoHandler(t *testing.T) {
	f := newFabric()
	defer f.Close()
	f.NewEndpoint("mute", simnet.USEast)
	c, _ := f.NewEndpoint("c", simnet.USEast)
	if _, err := c.Call(context.Background(), "mute", "m", nil); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v", err)
	}
}

func TestFabricRemoteError(t *testing.T) {
	f := newFabric()
	defer f.Close()
	s, _ := f.NewEndpoint("s", simnet.USEast)
	s.Serve(func(_ context.Context, _ string, _ []byte) ([]byte, error) { return nil, errors.New("boom") })
	c, _ := f.NewEndpoint("c", simnet.USEast)
	_, err := c.Call(context.Background(), "s", "m", nil)
	var re RemoteError
	if !errors.As(err, &re) || re.Msg != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestFabricPartition(t *testing.T) {
	f := newFabric()
	defer f.Close()
	s, _ := f.NewEndpoint("s", simnet.EUWest)
	s.Serve(func(_ context.Context, _ string, _ []byte) ([]byte, error) { return nil, nil })
	c, _ := f.NewEndpoint("c", simnet.USEast)
	f.Network().Partition(simnet.USEast, simnet.EUWest)
	_, err := c.Call(context.Background(), "s", "m", nil)
	var ue simnet.ErrUnreachable
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want unreachable", err)
	}
	f.Network().Heal(simnet.USEast, simnet.EUWest)
	if _, err := c.Call(context.Background(), "s", "m", nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestFabricCallPaysWANLatency(t *testing.T) {
	clk := clock.NewSim(time.Time{})
	f := NewFabric(simnet.New(clk))
	defer f.Close()
	s, _ := f.NewEndpoint("s", simnet.AsiaEast)
	s.Serve(func(_ context.Context, _ string, _ []byte) ([]byte, error) { return []byte("ok"), nil })
	c, _ := f.NewEndpoint("c", simnet.USEast)
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "s", "m", nil)
		done <- err
	}()
	// Request leg: 85ms.
	waitClk(t, clk, 1)
	clk.Advance(85 * time.Millisecond)
	// Response leg: 85ms.
	waitClk(t, clk, 1)
	clk.Advance(85 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestFabricRemove(t *testing.T) {
	f := newFabric()
	defer f.Close()
	s, _ := f.NewEndpoint("s", simnet.USEast)
	s.Serve(func(_ context.Context, _ string, _ []byte) ([]byte, error) { return nil, nil })
	c, _ := f.NewEndpoint("c", simnet.USEast)
	f.Remove("s")
	if _, err := c.Call(context.Background(), "s", "m", nil); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("err = %v", err)
	}
	f.Remove("s") // idempotent
	// Removed endpoint can be re-registered.
	if _, err := f.NewEndpoint("s", simnet.EUWest); err != nil {
		t.Fatal(err)
	}
}

func TestFabricClose(t *testing.T) {
	f := newFabric()
	c, _ := f.NewEndpoint("c", simnet.USEast)
	f.Close()
	if _, err := c.Call(context.Background(), "anything", "m", nil); err == nil {
		t.Fatal("call on closed fabric should fail")
	}
	if _, err := f.NewEndpoint("x", simnet.USEast); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestFabricNames(t *testing.T) {
	f := newFabric()
	defer f.Close()
	f.NewEndpoint("a", simnet.USEast)
	f.NewEndpoint("b", simnet.USWest)
	names := f.Names()
	if len(names) != 2 {
		t.Fatalf("Names = %v", names)
	}
}

func TestFabricConcurrentCalls(t *testing.T) {
	f := newFabric()
	defer f.Close()
	s, _ := f.NewEndpoint("s", simnet.USEast)
	s.Serve(func(_ context.Context, _ string, p []byte) ([]byte, error) { return p, nil })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		c, err := f.NewEndpoint(fmt.Sprintf("c%d", i), simnet.USWest)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				want := fmt.Sprintf("%d-%d", i, j)
				resp, err := c.Call(context.Background(), "s", "echo", []byte(want))
				if err != nil || string(resp) != want {
					t.Errorf("call: %q, %v", resp, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestEncodeDecode(t *testing.T) {
	type msg struct {
		Key   string
		Data  []byte
		Count int
	}
	in := msg{Key: "k", Data: []byte{1, 2}, Count: 7}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out msg
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Key != in.Key || out.Count != 7 || len(out.Data) != 2 {
		t.Fatalf("roundtrip = %+v", out)
	}
	if err := Decode([]byte("garbage"), &out); err == nil {
		t.Fatal("decoding garbage should fail")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, method string, p []byte) ([]byte, error) {
		if method == "fail" {
			return nil, errors.New("nope")
		}
		return append([]byte("srv:"), p...), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := DialTCP(srv.Addr())
	defer cli.Close()
	resp, err := cli.Call(context.Background(), "", "m", []byte("x"))
	if err != nil || string(resp) != "srv:x" {
		t.Fatalf("Call = %q, %v", resp, err)
	}
	_, err = cli.Call(context.Background(), "", "fail", nil)
	var re RemoteError
	if !errors.As(err, &re) || re.Msg != "nope" {
		t.Fatalf("err = %v", err)
	}
	// Connection reuse: subsequent call still works after a remote error.
	resp, err = cli.Call(context.Background(), "", "m", []byte("y"))
	if err != nil || string(resp) != "srv:y" {
		t.Fatalf("Call after error = %q, %v", resp, err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, _ string, p []byte) ([]byte, error) {
		return p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := DialTCP(srv.Addr())
	defer cli.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				want := fmt.Sprintf("%d/%d", i, j)
				resp, err := cli.Call(context.Background(), "", "echo", []byte(want))
				if err != nil || string(resp) != want {
					t.Errorf("call: %q, %v", resp, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPServerClose(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", func(_ context.Context, _ string, p []byte) ([]byte, error) { return p, nil })
	if err != nil {
		t.Fatal(err)
	}
	cli := DialTCP(srv.Addr())
	defer cli.Close()
	if _, err := cli.Call(context.Background(), "", "m", nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if _, err := cli.Call(context.Background(), "", "m", nil); err == nil {
		t.Fatal("call after server close should fail")
	}
}

func TestTCPClientClosed(t *testing.T) {
	cli := DialTCP("127.0.0.1:1") // never dialed
	cli.Close()
	if _, err := cli.Call(context.Background(), "", "m", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPDialFailure(t *testing.T) {
	cli := DialTCP("127.0.0.1:1") // nothing listening
	defer cli.Close()
	if _, err := cli.Call(context.Background(), "", "m", nil); err == nil {
		t.Fatal("dial to dead port should fail")
	}
}

func TestRemoteErrorMessage(t *testing.T) {
	e := RemoteError{Msg: "x"}
	if !strings.Contains(e.Error(), "x") {
		t.Fatal("message lost")
	}
}

func waitClk(t *testing.T, s *clock.Sim, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d clock waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}

package transport

import (
	"context"
	"strings"
	"testing"

	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// TestFabricTracePropagation performs one traced call over the fabric and
// checks the resulting span tree: the caller's root span parents the
// rpc.client span, whose SpanContext crosses the wire inside the payload
// and parents the callee's rpc.server span. This is the linkage every
// higher layer (wiera, tiera, tier) relies on.
func TestFabricTracePropagation(t *testing.T) {
	f := newFabric()
	defer f.Close()
	tr := f.Tracer()
	if tr == nil {
		t.Fatal("default fabric should own a tracer")
	}

	server, _ := f.NewEndpoint("server", simnet.EUWest)
	server.Serve(func(ctx context.Context, _ string, p []byte) ([]byte, error) {
		// The handler context carries the server span; a child started here
		// must join the same trace.
		_, inner := telemetry.StartSpan(ctx, "handler.work")
		if inner == nil {
			t.Error("handler context carries no span")
		}
		inner.End()
		return p, nil
	})
	client, _ := f.NewEndpoint("client", simnet.USWest)

	root := tr.StartRoot("test.op")
	ctx := telemetry.ContextWithSpan(context.Background(), root)
	if _, err := client.Call(ctx, "server", "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := tr.TraceSpans(root.Context().Trace.String())
	if len(spans) != 4 {
		t.Fatalf("trace spans = %d, want 4 (test.op, rpc.client, rpc.server, handler.work)", len(spans))
	}
	byName := map[string]telemetry.SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	rootRec, cli, srv, work := byName["test.op"], byName["rpc.client"], byName["rpc.server"], byName["handler.work"]
	if cli.ParentID != rootRec.SpanID {
		t.Fatalf("rpc.client parent = %d, want root %d", cli.ParentID, rootRec.SpanID)
	}
	if srv.ParentID != cli.SpanID {
		t.Fatalf("rpc.server parent = %d, want rpc.client %d", srv.ParentID, cli.SpanID)
	}
	if work.ParentID != srv.SpanID {
		t.Fatalf("handler.work parent = %d, want rpc.server %d", work.ParentID, srv.SpanID)
	}
	if cli.Attrs["method"] != "echo" || cli.Attrs["dst.region"] != string(simnet.EUWest) {
		t.Fatalf("rpc.client attrs = %v", cli.Attrs)
	}
	if srv.Attrs["region"] != string(simnet.EUWest) {
		t.Fatalf("rpc.server attrs = %v", srv.Attrs)
	}
	// The client span saw real WAN transit in both directions.
	if cli.Attrs["wan.request"] == "" || cli.Attrs["wan.response"] == "" {
		t.Fatalf("missing WAN attrs: %v", cli.Attrs)
	}
}

// TestFabricUntracedCall checks that calls without a span in the context
// produce no spans and no envelope overhead the handler can observe.
func TestFabricUntracedCall(t *testing.T) {
	f := newFabric()
	defer f.Close()
	server, _ := f.NewEndpoint("server", simnet.USEast)
	server.Serve(func(ctx context.Context, _ string, p []byte) ([]byte, error) {
		if telemetry.SpanFromContext(ctx) != nil {
			t.Error("untraced call delivered a span")
		}
		return p, nil
	})
	client, _ := f.NewEndpoint("client", simnet.USEast)
	if _, err := client.Call(context.Background(), "server", "m", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if n := f.Tracer().TotalSpans(); n != 0 {
		t.Fatalf("untraced call produced %d spans", n)
	}
}

// TestFabricRPCMetrics checks the server-side RPC metric families fill in
// with method and region labels.
func TestFabricRPCMetrics(t *testing.T) {
	f := newFabric()
	defer f.Close()
	server, _ := f.NewEndpoint("server", simnet.AsiaEast)
	server.Serve(func(_ context.Context, method string, p []byte) ([]byte, error) {
		return p, nil
	})
	client, _ := f.NewEndpoint("client", simnet.USEast)
	for i := 0; i < 3; i++ {
		if _, err := client.Call(context.Background(), "server", "ping", nil); err != nil {
			t.Fatal(err)
		}
	}
	out := f.Metrics().RenderPrometheus()
	if !strings.Contains(out, `rpc_calls_total{method="ping",region="asia-east"} 3`) {
		t.Fatalf("missing rpc_calls_total sample:\n%s", out)
	}
	if !strings.Contains(out, `rpc_server_seconds_count{method="ping",region="asia-east"} 3`) {
		t.Fatalf("missing rpc_server_seconds sample:\n%s", out)
	}
}

// TestFabricWithoutTelemetry checks the bare fabric stays fully functional
// with zero telemetry state.
func TestFabricWithoutTelemetry(t *testing.T) {
	f := NewFabric(newFabric().Network(), WithoutTelemetry())
	defer f.Close()
	if f.Metrics() != nil || f.Tracer() != nil {
		t.Fatal("WithoutTelemetry should leave registry and tracer nil")
	}
	server, _ := f.NewEndpoint("server", simnet.USEast)
	server.Serve(func(_ context.Context, _ string, p []byte) ([]byte, error) { return p, nil })
	client, _ := f.NewEndpoint("client", simnet.USWest)
	resp, err := client.Call(context.Background(), "server", "m", []byte("ok"))
	if err != nil || string(resp) != "ok" {
		t.Fatalf("resp = %q, err = %v", resp, err)
	}
}

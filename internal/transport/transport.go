// Package transport is the RPC layer between Wiera components and Tiera
// instances — the repository's Apache Thrift substitute. It defines a small
// request/response contract and two interchangeable implementations:
//
//   - Fabric: in-process endpoints connected through the simulated WAN
//     (internal/simnet), so every call pays the region-to-region latency and
//     bandwidth cost. All experiments run on this.
//   - TCP (tcp.go): a real wire transport with gob framing, used by the
//     cmd/wiera daemon and cmd/wieractl client.
//
// Payloads are opaque bytes; callers encode typed messages with
// encoding/gob (see Encode/Decode helpers).
package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"repro/internal/simnet"
)

// Handler serves one method invocation. Returning an error transmits the
// error text to the caller.
type Handler func(method string, payload []byte) ([]byte, error)

// Caller issues RPCs to a named endpoint.
type Caller interface {
	// Call invokes method on the endpoint named dst with payload and
	// returns its response.
	Call(dst, method string, payload []byte) ([]byte, error)
}

// Transport-level errors.
var (
	// ErrNoEndpoint reports an unknown destination name.
	ErrNoEndpoint = errors.New("transport: no such endpoint")
	// ErrClosed reports a closed endpoint or fabric.
	ErrClosed = errors.New("transport: closed")
)

// RemoteError wraps an error returned by a remote handler, distinguishing
// it from transport failures.
type RemoteError struct{ Msg string }

// Error implements error.
func (e RemoteError) Error() string { return "transport: remote error: " + e.Msg }

// Fabric connects in-process endpoints through the simulated WAN. Every
// call sleeps for the simnet transfer time of its request and response
// bodies between the caller's and callee's regions. Safe for concurrent
// use.
type Fabric struct {
	net *simnet.Network

	mu        sync.RWMutex
	endpoints map[string]*Endpoint
	closed    bool
}

// NewFabric returns a fabric over net.
func NewFabric(net *simnet.Network) *Fabric {
	return &Fabric{net: net, endpoints: make(map[string]*Endpoint)}
}

// Network returns the underlying simulated WAN.
func (f *Fabric) Network() *simnet.Network { return f.net }

// Endpoint is one addressable party on a Fabric.
type Endpoint struct {
	fabric  *Fabric
	name    string
	region  simnet.Region
	mu      sync.RWMutex
	handler Handler
	closed  bool
}

// NewEndpoint registers a new endpoint with a unique name in region.
func (f *Fabric) NewEndpoint(name string, region simnet.Region) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if _, ok := f.endpoints[name]; ok {
		return nil, fmt.Errorf("transport: endpoint %q already registered", name)
	}
	ep := &Endpoint{fabric: f, name: name, region: region}
	f.endpoints[name] = ep
	return ep, nil
}

// Remove unregisters an endpoint by name (idempotent).
func (f *Fabric) Remove(name string) {
	f.mu.Lock()
	if ep, ok := f.endpoints[name]; ok {
		ep.mu.Lock()
		ep.closed = true
		ep.mu.Unlock()
		delete(f.endpoints, name)
	}
	f.mu.Unlock()
}

// Names returns the registered endpoint names (unordered).
func (f *Fabric) Names() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.endpoints))
	for n := range f.endpoints {
		out = append(out, n)
	}
	return out
}

// Close shuts down the fabric; all endpoints stop accepting calls.
func (f *Fabric) Close() {
	f.mu.Lock()
	f.closed = true
	for _, ep := range f.endpoints {
		ep.mu.Lock()
		ep.closed = true
		ep.mu.Unlock()
	}
	f.endpoints = make(map[string]*Endpoint)
	f.mu.Unlock()
}

// Name returns the endpoint's registered name.
func (e *Endpoint) Name() string { return e.name }

// Region returns the endpoint's region.
func (e *Endpoint) Region() simnet.Region { return e.region }

// Serve installs the handler invoked for incoming calls. It may be called
// again to swap handlers (used when policies change at run time).
func (e *Endpoint) Serve(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// Call implements Caller. The request pays src->dst transfer time for the
// payload and dst->src time for the response. Handler errors arrive as
// RemoteError; partitions surface as simnet.ErrUnreachable.
func (e *Endpoint) Call(dst, method string, payload []byte) ([]byte, error) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, ErrClosed
	}
	e.mu.RUnlock()

	e.fabric.mu.RLock()
	target, ok := e.fabric.endpoints[dst]
	e.fabric.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoEndpoint, dst)
	}

	if err := e.fabric.net.Transfer(e.region, target.region, int64(len(payload))+int64(len(method))); err != nil {
		return nil, err
	}

	target.mu.RLock()
	h := target.handler
	closed := target.closed
	target.mu.RUnlock()
	if closed || h == nil {
		return nil, fmt.Errorf("%w: %q has no handler", ErrNoEndpoint, dst)
	}

	resp, herr := h(method, payload)
	if err := e.fabric.net.Transfer(target.region, e.region, int64(len(resp))); err != nil {
		return nil, err
	}
	if herr != nil {
		return nil, RemoteError{Msg: herr.Error()}
	}
	return resp, nil
}

// Encode gob-encodes v for use as an RPC payload.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes an RPC payload into v (a pointer).
func Decode(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	return nil
}

// Package transport is the RPC layer between Wiera components and Tiera
// instances — the repository's Apache Thrift substitute. It defines a small
// request/response contract and two interchangeable implementations:
//
//   - Fabric: in-process endpoints connected through the simulated WAN
//     (internal/simnet), so every call pays the region-to-region latency and
//     bandwidth cost. All experiments run on this.
//   - TCP (tcp.go): a real wire transport with gob framing, used by the
//     cmd/wiera daemon and cmd/wieractl client.
//
// Payloads are opaque bytes; callers encode typed messages with the
// Encode/Decode helpers. Hot-path messages (put/get/batch/repair/ec) use
// the hand-rolled binary codec in internal/wire; everything else uses
// encoding/gob. Frames are self-describing — Decode routes on the leading
// magic bytes — so mixed-codec and mixed-version peers interoperate (see
// Codec and DESIGN.md §14).
//
// Both implementations carry distributed-trace context across calls: when
// the caller's context holds a telemetry span, its SpanContext is prepended
// to the payload (telemetry.WrapPayload) and the receiving side starts a
// linked server span before dispatching to the handler. Untraced payloads
// pass through untouched, so instrumented and uninstrumented parties
// interoperate.
package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/flight"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/watch"
	"repro/internal/wire"
)

// Handler serves one method invocation. The context carries the server-side
// trace span (if the caller propagated one). Returning an error transmits
// the error text to the caller.
type Handler func(ctx context.Context, method string, payload []byte) ([]byte, error)

// Caller issues RPCs to a named endpoint.
type Caller interface {
	// Call invokes method on the endpoint named dst with payload and
	// returns its response. The context's trace span (if any) propagates to
	// the callee.
	Call(ctx context.Context, dst, method string, payload []byte) ([]byte, error)
}

// Transport-level errors.
var (
	// ErrNoEndpoint reports an unknown destination name.
	ErrNoEndpoint = errors.New("transport: no such endpoint")
	// ErrClosed reports a closed endpoint or fabric.
	ErrClosed = errors.New("transport: closed")
)

// RemoteError wraps an error returned by a remote handler, distinguishing
// it from transport failures.
type RemoteError struct{ Msg string }

// Error implements error.
func (e RemoteError) Error() string { return "transport: remote error: " + e.Msg }

// Fabric connects in-process endpoints through the simulated WAN. Every
// call sleeps for the simnet transfer time of its request and response
// bodies between the caller's and callee's regions. Safe for concurrent
// use.
//
// A Fabric owns the process's telemetry by default: a metrics Registry and
// a Tracer running on the simnet clock, shared by every layer above it.
// Use WithTelemetry to share an external pair or WithoutTelemetry to run
// bare (e.g. for overhead benchmarks).
type Fabric struct {
	net       *simnet.Network
	metrics   *telemetry.Registry
	tracer    *telemetry.Tracer
	flightRec *flight.Recorder
	journal   *watch.Journal

	rpcLatency  *telemetry.HistogramVec // {method, region} server-side service time
	rpcCalls    *telemetry.CounterVec   // {method, region}
	rpcErrors   *telemetry.CounterVec   // {method, region}
	rpcInflight *telemetry.GaugeVec     // {method, region} handlers currently executing
	rpcBytesIn  *telemetry.CounterVec   // {method, region} request payload bytes
	rpcBytesOut *telemetry.CounterVec   // {method, region} response payload bytes

	// rpcMetrics caches metric children per (method, region) so dispatch
	// skips the label-join lookup on every call.
	rpcMu      sync.RWMutex
	rpcMetrics map[rpcKey]*rpcChildren

	mu        sync.RWMutex
	endpoints map[string]*Endpoint
	closed    bool
}

// rpcKey identifies one (method, region) metric child set.
type rpcKey struct{ method, region string }

// rpcChildren caches the per-(method, region) server-side RPC metrics.
type rpcChildren struct {
	latency  *telemetry.Histogram
	calls    *telemetry.Counter
	errors   *telemetry.Counter
	inflight *telemetry.Gauge
	bytesIn  *telemetry.Counter
	bytesOut *telemetry.Counter
}

// rpc returns the cached metric children for (method, region).
func (f *Fabric) rpc(method, region string) *rpcChildren {
	key := rpcKey{method, region}
	f.rpcMu.RLock()
	c, ok := f.rpcMetrics[key]
	f.rpcMu.RUnlock()
	if ok {
		return c
	}
	f.rpcMu.Lock()
	defer f.rpcMu.Unlock()
	if c, ok = f.rpcMetrics[key]; ok {
		return c
	}
	c = &rpcChildren{
		latency:  f.rpcLatency.With(method, region),
		calls:    f.rpcCalls.With(method, region),
		errors:   f.rpcErrors.With(method, region),
		inflight: f.rpcInflight.With(method, region),
		bytesIn:  f.rpcBytesIn.With(method, region),
		bytesOut: f.rpcBytesOut.With(method, region),
	}
	f.rpcMetrics[key] = c
	return c
}

// FabricOption configures NewFabric.
type FabricOption func(*Fabric)

// WithTelemetry makes the fabric record into an externally owned registry
// and tracer (either may be nil to disable that half).
func WithTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) FabricOption {
	return func(f *Fabric) {
		f.metrics = reg
		f.tracer = tr
	}
}

// WithoutTelemetry disables the fabric's default registry, tracer, flight
// recorder, and event journal; calls pay only a nil check.
func WithoutTelemetry() FabricOption {
	return func(f *Fabric) {
		f.metrics = nil
		f.tracer = nil
		f.flightRec = nil
		f.journal = nil
	}
}

// WithJournal replaces the fabric's default event journal (nil disables
// structured event recording).
func WithJournal(j *watch.Journal) FabricOption {
	return func(f *Fabric) { f.journal = j }
}

// WithFlightRecorder replaces the fabric's default flight recorder (nil
// disables per-request flight records while keeping metrics and traces).
func WithFlightRecorder(r *flight.Recorder) FabricOption {
	return func(f *Fabric) { f.flightRec = r }
}

// NewFabric returns a fabric over net. Unless configured otherwise it
// creates a fresh telemetry registry plus a tracer timestamping spans with
// the network's clock (so span durations line up with simulated latency),
// and instruments net's transfers into the registry.
func NewFabric(net *simnet.Network, opts ...FabricOption) *Fabric {
	f := &Fabric{net: net, endpoints: make(map[string]*Endpoint)}
	f.metrics = telemetry.NewRegistry()
	f.tracer = telemetry.NewTracer(telemetry.WithNow(net.Clock().Now))
	f.flightRec = flight.NewRecorder(flight.Config{Now: net.Clock().Now})
	f.journal = watch.NewJournal(net.Clock().Now, 0)
	for _, o := range opts {
		o(f)
	}
	if f.flightRec != nil && f.tracer != nil {
		// A slow request is past tracing, but its immediate successor —
		// likely hitting the same congested path — gets a guaranteed trace.
		tr := f.tracer
		f.flightRec.OnSlow(func(flight.Record) { tr.ForceSample(1) })
	}
	if f.metrics != nil {
		f.rpcLatency = f.metrics.Histogram("rpc_server_seconds",
			"Server-side RPC service time.", "method", "region")
		f.rpcCalls = f.metrics.Counter("rpc_calls_total",
			"RPCs dispatched to a handler.", "method", "region")
		f.rpcErrors = f.metrics.Counter("rpc_errors_total",
			"RPCs whose handler returned an error.", "method", "region")
		f.rpcInflight = f.metrics.Gauge("rpc_inflight",
			"RPCs currently executing in a handler.", "method", "region")
		f.rpcBytesIn = f.metrics.Counter("rpc_bytes_in_total",
			"Request payload bytes received, per RPC method.", "method", "region")
		f.rpcBytesOut = f.metrics.Counter("rpc_bytes_out_total",
			"Response payload bytes sent, per RPC method.", "method", "region")
		f.rpcMetrics = make(map[rpcKey]*rpcChildren)
		net.Instrument(f.metrics)
	}
	return f
}

// Network returns the underlying simulated WAN.
func (f *Fabric) Network() *simnet.Network { return f.net }

// Metrics returns the fabric's registry (nil when disabled).
func (f *Fabric) Metrics() *telemetry.Registry { return f.metrics }

// Tracer returns the fabric's tracer (nil when disabled).
func (f *Fabric) Tracer() *telemetry.Tracer { return f.tracer }

// Flight returns the fabric's shared request flight recorder (nil when
// disabled).
func (f *Fabric) Flight() *flight.Recorder { return f.flightRec }

// Events returns the fabric's shared structured event journal (nil when
// disabled). Every layer above the fabric records what it did to the
// deployment here: ring epochs, autoscale actions, SLO transitions,
// hot-key promotions, repair cycles, watchdog trips.
func (f *Fabric) Events() *watch.Journal { return f.journal }

// Endpoint is one addressable party on a Fabric.
type Endpoint struct {
	fabric  *Fabric
	name    string
	region  simnet.Region
	mu      sync.RWMutex
	handler Handler
	closed  bool
}

// NewEndpoint registers a new endpoint with a unique name in region.
func (f *Fabric) NewEndpoint(name string, region simnet.Region) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if _, ok := f.endpoints[name]; ok {
		return nil, fmt.Errorf("transport: endpoint %q already registered", name)
	}
	ep := &Endpoint{fabric: f, name: name, region: region}
	f.endpoints[name] = ep
	return ep, nil
}

// Remove unregisters an endpoint by name (idempotent).
func (f *Fabric) Remove(name string) {
	f.mu.Lock()
	if ep, ok := f.endpoints[name]; ok {
		ep.mu.Lock()
		ep.closed = true
		ep.mu.Unlock()
		delete(f.endpoints, name)
	}
	f.mu.Unlock()
}

// Registered reports whether an endpoint with this name currently exists.
func (f *Fabric) Registered(name string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, ok := f.endpoints[name]
	return ok
}

// Names returns the registered endpoint names (unordered).
func (f *Fabric) Names() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.endpoints))
	for n := range f.endpoints {
		out = append(out, n)
	}
	return out
}

// Close shuts down the fabric; all endpoints stop accepting calls.
func (f *Fabric) Close() {
	f.mu.Lock()
	f.closed = true
	for _, ep := range f.endpoints {
		ep.mu.Lock()
		ep.closed = true
		ep.mu.Unlock()
	}
	f.endpoints = make(map[string]*Endpoint)
	f.mu.Unlock()
}

// Name returns the endpoint's registered name.
func (e *Endpoint) Name() string { return e.name }

// Region returns the endpoint's region.
func (e *Endpoint) Region() simnet.Region { return e.region }

// Serve installs the handler invoked for incoming calls. It may be called
// again to swap handlers (used when policies change at run time).
func (e *Endpoint) Serve(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// Call implements Caller. The request pays src->dst transfer time for the
// payload and dst->src time for the response. Handler errors arrive as
// RemoteError; partitions surface as simnet.ErrUnreachable.
//
// When ctx carries a trace span, Call opens an rpc.client child covering
// the whole exchange (with WAN transit times as attributes), ships its
// SpanContext inside the payload, and the callee side opens a linked
// rpc.server span around handler dispatch — exactly the span pair a real
// cross-process RPC would produce.
func (e *Endpoint) Call(ctx context.Context, dst, method string, payload []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, ErrClosed
	}
	e.mu.RUnlock()

	f := e.fabric
	f.mu.RLock()
	target, ok := f.endpoints[dst]
	f.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoEndpoint, dst)
	}

	var clientSpan *telemetry.Span
	if _, sp := telemetry.StartSpan(ctx, "rpc.client"); sp != nil {
		clientSpan = sp
		clientSpan.SetAttr("method", method)
		clientSpan.SetAttr("dst", dst)
		clientSpan.SetAttr("src.region", string(e.region))
		clientSpan.SetAttr("dst.region", string(target.region))
	}
	wire := telemetry.WrapPayload(clientSpan.Context(), payload)

	clk := f.net.Clock()
	out, err := f.net.TransferTime(e.region, target.region, int64(len(wire))+int64(len(method)))
	if err != nil {
		clientSpan.SetError(err)
		clientSpan.End()
		return nil, err
	}
	clk.Sleep(out)

	target.mu.RLock()
	h := target.handler
	closed := target.closed
	target.mu.RUnlock()
	if closed || h == nil {
		err := fmt.Errorf("%w: %q has no handler", ErrNoEndpoint, dst)
		clientSpan.SetError(err)
		clientSpan.End()
		return nil, err
	}

	resp, herr := f.dispatch(target, h, method, wire)

	back, err := f.net.TransferTime(target.region, e.region, int64(len(resp)))
	if err != nil {
		clientSpan.SetError(err)
		clientSpan.End()
		return nil, err
	}
	clk.Sleep(back)

	if clientSpan != nil {
		clientSpan.SetAttr("wan.request", out.String())
		clientSpan.SetAttr("wan.response", back.String())
	}
	if herr != nil {
		rerr := RemoteError{Msg: herr.Error()}
		clientSpan.SetError(rerr)
		clientSpan.End()
		return nil, rerr
	}
	clientSpan.End()
	return resp, nil
}

// dispatch runs the callee side of a call: it unwraps the trace envelope,
// opens the rpc.server span on a fresh context (the handler is logically in
// another process — nothing from the caller's context leaks across except
// the SpanContext), invokes the handler, and records the server-side RPC
// metrics labeled by method and the callee's region.
func (f *Fabric) dispatch(target *Endpoint, h Handler, method string, payload []byte) ([]byte, error) {
	remote, inner := telemetry.UnwrapPayload(payload)
	sctx := context.Background()
	var serverSpan *telemetry.Span
	if remote.Valid() && f.tracer != nil {
		serverSpan = f.tracer.StartRemote(remote, "rpc.server")
		serverSpan.SetAttr("method", method)
		serverSpan.SetAttr("endpoint", target.name)
		serverSpan.SetAttr("region", string(target.region))
		sctx = telemetry.ContextWithSpan(sctx, serverSpan)
	}

	// Dispatch is concurrent by construction: each caller goroutine runs
	// the handler itself, so one endpoint serves many in-flight calls at
	// once — the same semantics the multiplexed TCP transport provides.
	var m *rpcChildren
	if f.metrics != nil {
		m = f.rpc(method, string(target.region))
		m.inflight.Add(1)
	}
	start := f.net.Clock().Now()
	resp, herr := h(sctx, method, inner)
	if m != nil {
		m.inflight.Add(-1)
		// Traced calls stamp their trace ID into the latency bucket as its
		// exemplar — the fleet p99 bucket then names a concrete trace.
		trace := ""
		if remote.Valid() {
			trace = remote.Trace.String()
		}
		m.latency.RecordTrace(f.net.Clock().Now().Sub(start), trace)
		m.calls.Inc()
		if herr != nil {
			m.errors.Inc()
		}
		// Per-method WAN byte attribution: request bytes after envelope
		// stripping, response bytes as handed back to the caller. These
		// feed the cost model and `wieractl top`'s wire section.
		m.bytesIn.Add(int64(len(inner)))
		m.bytesOut.Add(int64(len(resp)))
	}
	serverSpan.SetError(herr)
	serverSpan.End()
	return resp, herr
}

// Codec selects how Encode serializes a message. The decode side needs no
// selection: payloads are self-describing (wire frames open with a magic
// byte gob streams can never produce), so Decode always accepts both.
type Codec uint8

const (
	// CodecAuto uses the hand-rolled binary codec for messages that
	// implement wire.Marshaler (the put/get/batch/repair/ec hot path) and
	// gob for everything else. This is the process default.
	CodecAuto Codec = iota
	// CodecGob forces gob for every message — the pre-wire format. Used
	// during rolling upgrades while gob-only peers remain, and by the
	// mixed-codec interop tests.
	CodecGob
)

// defaultCodec is the process-wide codec used by Encode. Nodes and clients
// can override it per instance; this atomic only sets the default.
var defaultCodec atomic.Uint32

// DefaultCodec returns the process-wide default encode codec.
func DefaultCodec() Codec { return Codec(defaultCodec.Load()) }

// SetDefaultCodec sets the process-wide default encode codec.
func SetDefaultCodec(c Codec) { defaultCodec.Store(uint32(c)) }

// encBufPool recycles encode scratch buffers: a hot replication path
// encodes thousands of payloads per flush, and re-growing a fresh
// bytes.Buffer for each one dominated the allocation profile. Buffers keep
// their grown capacity across uses, so steady-state gob Encode allocates
// only the returned copy (plus gob's own encoder state).
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// decReaderPool recycles the reader wrapper gob Decode needs around its
// input.
var decReaderPool = sync.Pool{New: func() any { return bytes.NewReader(nil) }}

// Encode serializes v for use as an RPC payload using the process default
// codec. The returned slice is owned by the caller.
func Encode(v any) ([]byte, error) { return EncodeWith(DefaultCodec(), v) }

// EncodeWith serializes v under an explicit codec choice. Under CodecAuto,
// messages implementing wire.Marshaler take the binary fast path — a
// single exact-size allocation, no reflection; everything else (and
// everything under CodecGob) goes through gob.
func EncodeWith(c Codec, v any) ([]byte, error) {
	if c != CodecGob {
		if m, ok := v.(wire.Marshaler); ok {
			return wire.Marshal(m), nil
		}
	}
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		encBufPool.Put(buf)
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	encBufPool.Put(buf)
	return out, nil
}

// AppendEncode appends v's binary frame to dst when v supports the wire
// codec and c permits it, avoiding the per-message allocation Encode pays.
// The bool result reports whether the fast path was taken; when false the
// caller must fall back to Encode (gob needs its own buffer management).
func AppendEncode(c Codec, dst []byte, v any) ([]byte, bool) {
	if c == CodecGob {
		return dst, false
	}
	m, ok := v.(wire.Marshaler)
	if !ok {
		return dst, false
	}
	return wire.AppendFrame(dst, m), true
}

// Decode deserializes an RPC payload into v (a pointer). The payload's
// leading bytes pick the decoder: binary wire frames (magic 0xBD 0x57) go
// to the message's UnmarshalWire, anything else is gob. A wire frame
// arriving for a type without a binary decoding is an error; a gob payload
// for a wire-capable type decodes fine — that is what lets an upgraded
// node keep serving gob-only peers.
func Decode(data []byte, v any) error {
	if wire.Is(data) {
		u, ok := v.(wire.Unmarshaler)
		if !ok {
			return fmt.Errorf("transport: decode: wire frame for non-wire type %T", v)
		}
		if err := wire.Unmarshal(data, u); err != nil {
			return fmt.Errorf("transport: decode: %w", err)
		}
		return nil
	}
	r := decReaderPool.Get().(*bytes.Reader)
	r.Reset(data)
	err := gob.NewDecoder(r).Decode(v)
	decReaderPool.Put(r)
	if err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	return nil
}

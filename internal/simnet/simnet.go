// Package simnet models the wide-area network between cloud regions: a
// latency matrix with jitter, per-path bandwidth, and run-time fault
// injection (added delay, packet loss via errors, partitions). It stands in
// for the live AWS/Azure WAN in the paper's evaluation.
//
// The latency matrix defaults are calibrated to the published inter-region
// round-trip times of 2016-era AWS (and match the latencies visible in the
// paper's figures: ~400 ms multi-primary puts across four regions, ~200 ms
// gets on a US-East S3-IA tier from Asia-East).
package simnet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/telemetry"
)

// Region identifies a cloud data-center location. Values mirror the regions
// the paper deploys on.
type Region string

// Regions used in the paper's evaluation.
const (
	USEast   Region = "us-east"   // Virginia (AWS)
	USWest   Region = "us-west"   // N. California (AWS)
	EUWest   Region = "eu-west"   // Ireland (AWS)
	AsiaEast Region = "asia-east" // Tokyo (AWS)
	// AzureUSEast is the Azure Virginia region used in Sec 5.4: ~2 ms from
	// AWS US-East.
	AzureUSEast Region = "azure-us-east"
	// USWest2 and USWest3 are additional nearby DCs within the US-West
	// region (the paper's Sec 3.3.3 SimplerConsistency setting uses
	// US-West-1..N; our earlier work [15] showed DC density within a region
	// keeps these a few ms apart).
	USWest2 Region = "us-west-2"
	USWest3 Region = "us-west-3"
)

// DefaultRegions lists the AWS regions of the main experiments in paper
// order.
func DefaultRegions() []Region {
	return []Region{USEast, USWest, EUWest, AsiaEast}
}

// pathKey identifies a directed src->dst path.
type pathKey struct{ src, dst Region }

// Network is a simulated WAN. All methods are safe for concurrent use.
type Network struct {
	clk clock.Clock

	mu         sync.Mutex
	rtt        map[pathKey]time.Duration // round-trip time between regions
	bandwidth  map[pathKey]float64       // bytes/sec, 0 = unlimited
	nextFree   map[pathKey]time.Time     // bandwidth admission: next slot per path
	jitterFrac float64                   // +/- fraction of one-way latency
	rng        *rand.Rand
	extraDelay map[pathKey]time.Duration // injected delay per path
	regionLag  map[Region]time.Duration  // injected delay on all paths touching a region
	partition  map[pathKey]bool          // true = unreachable
	transfers  int64                     // count of simulated transfers
	bytesMoved int64

	// Telemetry (installed by Instrument; nil-safe when absent). Children
	// are cached per path so the transfer hot path skips the label lookup.
	transferSeconds *telemetry.HistogramVec // {src, dst} one-way transit time
	transferCount   *telemetry.CounterVec   // {src, dst}
	transferBytes   *telemetry.CounterVec   // {src, dst}
	transferMetrics map[pathKey]*pathMetrics
}

// pathMetrics caches one path's metric children.
type pathMetrics struct {
	seconds *telemetry.Histogram
	count   *telemetry.Counter
	bytes   *telemetry.Counter
}

// Option configures a Network.
type Option func(*Network)

// WithJitter sets the jitter fraction (0 disables; 0.1 means +/-10% of the
// one-way latency, uniformly distributed).
func WithJitter(frac float64) Option {
	return func(n *Network) { n.jitterFrac = frac }
}

// WithSeed seeds the jitter RNG for reproducible runs.
func WithSeed(seed int64) Option {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// New returns a Network with the default 2016-era latency matrix over the
// given clock.
func New(clk clock.Clock, opts ...Option) *Network {
	n := &Network{
		clk:        clk,
		rtt:        make(map[pathKey]time.Duration),
		bandwidth:  make(map[pathKey]float64),
		nextFree:   make(map[pathKey]time.Time),
		extraDelay: make(map[pathKey]time.Duration),
		regionLag:  make(map[Region]time.Duration),
		partition:  make(map[pathKey]bool),
		rng:        rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(n)
	}
	n.installDefaults()
	return n
}

// installDefaults loads the calibrated RTT matrix. Within-region RTT is
// 1 ms; the AWS<->Azure US-East pair is 2 ms per the paper (Sec 5.4.1).
func (n *Network) installDefaults() {
	set := func(a, b Region, rtt time.Duration) {
		n.rtt[pathKey{a, b}] = rtt
		n.rtt[pathKey{b, a}] = rtt
	}
	for _, r := range []Region{USEast, USWest, EUWest, AsiaEast, AzureUSEast, USWest2, USWest3} {
		n.rtt[pathKey{r, r}] = time.Millisecond
	}
	set(USEast, USWest, 70*time.Millisecond)
	set(USEast, EUWest, 80*time.Millisecond)
	set(USEast, AsiaEast, 170*time.Millisecond)
	set(USWest, EUWest, 140*time.Millisecond)
	set(USWest, AsiaEast, 110*time.Millisecond)
	set(EUWest, AsiaEast, 240*time.Millisecond)
	set(AzureUSEast, USEast, 2*time.Millisecond)
	set(AzureUSEast, USWest, 70*time.Millisecond)
	set(AzureUSEast, EUWest, 80*time.Millisecond)
	set(AzureUSEast, AsiaEast, 170*time.Millisecond)
	// Nearby DCs inside the US-West region: single-digit-ms paths; their
	// long-haul latencies mirror US-West's.
	set(USWest, USWest2, 5*time.Millisecond)
	set(USWest, USWest3, 8*time.Millisecond)
	set(USWest2, USWest3, 6*time.Millisecond)
	for _, r := range []Region{USEast, EUWest, AsiaEast, AzureUSEast} {
		set(USWest2, r, n.rtt[pathKey{USWest, r}])
		set(USWest3, r, n.rtt[pathKey{USWest, r}])
	}
}

// SetRTT overrides the round-trip time between two regions (both
// directions).
func (n *Network) SetRTT(a, b Region, rtt time.Duration) {
	n.mu.Lock()
	n.rtt[pathKey{a, b}] = rtt
	n.rtt[pathKey{b, a}] = rtt
	n.mu.Unlock()
}

// RTT returns the configured round-trip time between two regions, including
// any injected delays (which model congestion or degraded links). Unknown
// pairs default to 100 ms.
func (n *Network) RTT(a, b Region) time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rttLocked(a, b)
}

func (n *Network) rttLocked(a, b Region) time.Duration {
	rtt, ok := n.rtt[pathKey{a, b}]
	if !ok {
		rtt = 100 * time.Millisecond
	}
	rtt += n.extraDelay[pathKey{a, b}]
	rtt += n.regionLag[a] + n.regionLag[b]
	if a == b {
		rtt -= n.regionLag[a] // lag counted once for a self path
	}
	return rtt
}

// SetBandwidth limits the src->dst path to bps bytes per second (0 removes
// the limit).
func (n *Network) SetBandwidth(src, dst Region, bps float64) {
	n.mu.Lock()
	if bps <= 0 {
		delete(n.bandwidth, pathKey{src, dst})
	} else {
		n.bandwidth[pathKey{src, dst}] = bps
	}
	n.mu.Unlock()
}

// InjectDelay adds d to the RTT of the src->dst path (and dst->src), until
// ClearDelay. This is the fault-injection hook behind the paper's Fig 7
// experiment.
func (n *Network) InjectDelay(a, b Region, d time.Duration) {
	n.mu.Lock()
	n.extraDelay[pathKey{a, b}] = d
	n.extraDelay[pathKey{b, a}] = d
	n.mu.Unlock()
}

// ClearDelay removes an injected path delay.
func (n *Network) ClearDelay(a, b Region) {
	n.mu.Lock()
	delete(n.extraDelay, pathKey{a, b})
	delete(n.extraDelay, pathKey{b, a})
	n.mu.Unlock()
}

// InjectRegionLag adds d to every path touching region r (models a
// storage/VM slowdown local to one DC). Zero clears it.
func (n *Network) InjectRegionLag(r Region, d time.Duration) {
	n.mu.Lock()
	if d <= 0 {
		delete(n.regionLag, r)
	} else {
		n.regionLag[r] = d
	}
	n.mu.Unlock()
}

// Partition makes the a<->b pair unreachable until Heal.
func (n *Network) Partition(a, b Region) {
	n.mu.Lock()
	n.partition[pathKey{a, b}] = true
	n.partition[pathKey{b, a}] = true
	n.mu.Unlock()
}

// Heal removes a partition between a and b.
func (n *Network) Heal(a, b Region) {
	n.mu.Lock()
	delete(n.partition, pathKey{a, b})
	delete(n.partition, pathKey{b, a})
	n.mu.Unlock()
}

// Reachable reports whether src can currently reach dst.
func (n *Network) Reachable(src, dst Region) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.partition[pathKey{src, dst}]
}

// ErrUnreachable is returned by Transfer when the path is partitioned.
type ErrUnreachable struct{ Src, Dst Region }

// Error implements error.
func (e ErrUnreachable) Error() string {
	return fmt.Sprintf("simnet: %s -> %s unreachable (partitioned)", e.Src, e.Dst)
}

// Instrument registers the network's WAN-transit metrics into reg: a
// transit-time histogram plus transfer and byte counters, all labeled by
// source and destination region. Safe to call more than once (the registry
// dedupes families); a nil registry uninstalls instrumentation.
func (n *Network) Instrument(reg *telemetry.Registry) {
	n.mu.Lock()
	n.transferMetrics = make(map[pathKey]*pathMetrics)
	if reg == nil {
		n.transferSeconds, n.transferCount, n.transferBytes = nil, nil, nil
	} else {
		n.transferSeconds = reg.Histogram("simnet_transfer_seconds",
			"Simulated one-way WAN transit time.", "src", "dst")
		n.transferCount = reg.Counter("simnet_transfers_total",
			"Simulated WAN transfers.", "src", "dst")
		n.transferBytes = reg.Counter("simnet_transfer_bytes_total",
			"Bytes moved across the simulated WAN.", "src", "dst")
	}
	n.mu.Unlock()
}

// TransferTime returns the simulated time for moving size bytes one way
// from src to dst: half the RTT (propagation) plus the bandwidth
// serialization delay, with jitter applied. Bandwidth is a *shared* path
// resource: concurrent transfers are admitted in sequence (each reserves
// size/bps of link time), so aggregate throughput on a capped path never
// exceeds the cap — the behaviour behind Azure's inter-VM throttling in
// Figures 11 and 12.
func (n *Network) TransferTime(src, dst Region, size int64) (time.Duration, error) {
	n.mu.Lock()
	if n.partition[pathKey{src, dst}] {
		n.mu.Unlock()
		return 0, ErrUnreachable{src, dst}
	}
	oneWay := n.rttLocked(src, dst) / 2
	if n.jitterFrac > 0 {
		j := 1 + n.jitterFrac*(2*n.rng.Float64()-1)
		oneWay = time.Duration(float64(oneWay) * j)
	}
	if bps, ok := n.bandwidth[pathKey{src, dst}]; ok && size > 0 {
		key := pathKey{src, dst}
		now := n.clk.Now()
		slot := n.nextFree[key]
		if slot.Before(now) {
			slot = now
		}
		serialization := time.Duration(float64(size) / bps * float64(time.Second))
		n.nextFree[key] = slot.Add(serialization)
		oneWay += slot.Sub(now) + serialization
	}
	n.transfers++
	n.bytesMoved += size
	var pm *pathMetrics
	if n.transferCount != nil {
		key := pathKey{src, dst}
		pm = n.transferMetrics[key]
		if pm == nil {
			pm = &pathMetrics{
				seconds: n.transferSeconds.With(string(src), string(dst)),
				count:   n.transferCount.With(string(src), string(dst)),
				bytes:   n.transferBytes.With(string(src), string(dst)),
			}
			n.transferMetrics[key] = pm
		}
	}
	n.mu.Unlock()
	if pm != nil {
		pm.seconds.Record(oneWay)
		pm.count.Inc()
		pm.bytes.Add(size)
	}
	return oneWay, nil
}

// Transfer blocks for the simulated one-way transfer time of size bytes
// from src to dst, or returns ErrUnreachable.
func (n *Network) Transfer(src, dst Region, size int64) error {
	d, err := n.TransferTime(src, dst, size)
	if err != nil {
		return err
	}
	n.clk.Sleep(d)
	return nil
}

// RoundTrip blocks for a full request/response exchange moving reqSize
// bytes out and respSize bytes back.
func (n *Network) RoundTrip(src, dst Region, reqSize, respSize int64) error {
	if err := n.Transfer(src, dst, reqSize); err != nil {
		return err
	}
	return n.Transfer(dst, src, respSize)
}

// Stats reports cumulative transfer count and bytes moved.
func (n *Network) Stats() (transfers, bytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.transfers, n.bytesMoved
}

// Clock returns the clock the network runs on.
func (n *Network) Clock() clock.Clock { return n.clk }

package simnet

import (
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
)

func newTestNet() (*Network, *clock.Sim) {
	clk := clock.NewSim(time.Time{})
	return New(clk), clk
}

func TestDefaultMatrixSymmetric(t *testing.T) {
	n, _ := newTestNet()
	regions := DefaultRegions()
	for _, a := range regions {
		for _, b := range regions {
			if n.RTT(a, b) != n.RTT(b, a) {
				t.Errorf("RTT(%s,%s) != RTT(%s,%s)", a, b, b, a)
			}
		}
	}
}

func TestDefaultMatrixValues(t *testing.T) {
	n, _ := newTestNet()
	if got := n.RTT(USEast, AsiaEast); got != 170*time.Millisecond {
		t.Fatalf("USEast-AsiaEast RTT = %v", got)
	}
	if got := n.RTT(AzureUSEast, USEast); got != 2*time.Millisecond {
		t.Fatalf("Azure-AWS USEast RTT = %v, paper says ~2ms", got)
	}
	if got := n.RTT(USWest, USWest); got != time.Millisecond {
		t.Fatalf("self RTT = %v", got)
	}
}

func TestUnknownPairDefaults(t *testing.T) {
	n, _ := newTestNet()
	if got := n.RTT("mars", "venus"); got != 100*time.Millisecond {
		t.Fatalf("unknown pair RTT = %v, want 100ms default", got)
	}
}

func TestSetRTT(t *testing.T) {
	n, _ := newTestNet()
	n.SetRTT(USEast, USWest, 50*time.Millisecond)
	if n.RTT(USWest, USEast) != 50*time.Millisecond {
		t.Fatal("SetRTT not symmetric")
	}
}

func TestInjectAndClearDelay(t *testing.T) {
	n, _ := newTestNet()
	base := n.RTT(USEast, USWest)
	n.InjectDelay(USEast, USWest, time.Second)
	if got := n.RTT(USEast, USWest); got != base+time.Second {
		t.Fatalf("RTT with injected delay = %v, want %v", got, base+time.Second)
	}
	n.ClearDelay(USEast, USWest)
	if got := n.RTT(USEast, USWest); got != base {
		t.Fatalf("RTT after clear = %v, want %v", got, base)
	}
}

func TestInjectRegionLag(t *testing.T) {
	n, _ := newTestNet()
	base := n.RTT(USEast, EUWest)
	n.InjectRegionLag(USEast, 500*time.Millisecond)
	if got := n.RTT(USEast, EUWest); got != base+500*time.Millisecond {
		t.Fatalf("lagged RTT = %v", got)
	}
	// Both endpoints lagged: counted twice.
	n.InjectRegionLag(EUWest, 100*time.Millisecond)
	if got := n.RTT(USEast, EUWest); got != base+600*time.Millisecond {
		t.Fatalf("double-lagged RTT = %v", got)
	}
	// Self path counts the lag once.
	if got := n.RTT(USEast, USEast); got != time.Millisecond+500*time.Millisecond {
		t.Fatalf("self lagged RTT = %v", got)
	}
	n.InjectRegionLag(USEast, 0)
	n.InjectRegionLag(EUWest, 0)
	if got := n.RTT(USEast, EUWest); got != base {
		t.Fatalf("RTT after clearing lag = %v", got)
	}
}

func TestPartition(t *testing.T) {
	n, _ := newTestNet()
	n.Partition(USEast, EUWest)
	if n.Reachable(USEast, EUWest) || n.Reachable(EUWest, USEast) {
		t.Fatal("partitioned pair still reachable")
	}
	if _, err := n.TransferTime(USEast, EUWest, 10); err == nil {
		t.Fatal("TransferTime across partition should fail")
	}
	var ue ErrUnreachable
	_, err := n.TransferTime(USEast, EUWest, 10)
	if !errors.As(err, &ue) || ue.Src != USEast {
		t.Fatalf("error = %v, want ErrUnreachable{us-east,...}", err)
	}
	n.Heal(USEast, EUWest)
	if !n.Reachable(USEast, EUWest) {
		t.Fatal("heal did not restore reachability")
	}
}

func TestTransferTimeIsHalfRTT(t *testing.T) {
	n, _ := newTestNet()
	d, err := n.TransferTime(USEast, AsiaEast, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 85*time.Millisecond {
		t.Fatalf("one-way = %v, want 85ms (half of 170ms)", d)
	}
}

func TestBandwidthSerializationDelay(t *testing.T) {
	n, _ := newTestNet()
	n.SetBandwidth(USEast, USWest, 1024*1024) // 1 MiB/s
	d, err := n.TransferTime(USEast, USWest, 1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	want := 35*time.Millisecond + time.Second
	if d != want {
		t.Fatalf("transfer time = %v, want %v", d, want)
	}
	// Reverse direction unlimited.
	d2, _ := n.TransferTime(USWest, USEast, 1024*1024)
	if d2 != 35*time.Millisecond {
		t.Fatalf("reverse transfer = %v, want 35ms", d2)
	}
	n.SetBandwidth(USEast, USWest, 0) // clear
	d3, _ := n.TransferTime(USEast, USWest, 1024*1024)
	if d3 != 35*time.Millisecond {
		t.Fatalf("after clearing bandwidth = %v", d3)
	}
}

func TestJitterBounded(t *testing.T) {
	clk := clock.NewSim(time.Time{})
	n := New(clk, WithJitter(0.1), WithSeed(42))
	base := 35 * time.Millisecond // half of 70ms
	for i := 0; i < 200; i++ {
		d, err := n.TransferTime(USEast, USWest, 0)
		if err != nil {
			t.Fatal(err)
		}
		lo := time.Duration(float64(base) * 0.9)
		hi := time.Duration(float64(base) * 1.1)
		if d < lo || d > hi {
			t.Fatalf("jittered time %v outside [%v,%v]", d, lo, hi)
		}
	}
}

func TestJitterReproducibleWithSeed(t *testing.T) {
	run := func() []time.Duration {
		n := New(clock.NewSim(time.Time{}), WithJitter(0.2), WithSeed(7))
		var out []time.Duration
		for i := 0; i < 50; i++ {
			d, _ := n.TransferTime(USEast, EUWest, 0)
			out = append(out, d)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTransferBlocksOnClock(t *testing.T) {
	n, clk := newTestNet()
	done := make(chan error, 1)
	go func() { done <- n.Transfer(USEast, AsiaEast, 0) }()
	// The goroutine should block until the sim clock advances 85ms.
	waitWaiters(t, clk, 1)
	select {
	case <-done:
		t.Fatal("Transfer returned before clock advanced")
	default:
	}
	clk.Advance(85 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	n, clk := newTestNet()
	done := make(chan error, 1)
	go func() { done <- n.RoundTrip(USEast, USWest, 100, 100) }()
	waitWaiters(t, clk, 1)
	clk.Advance(35 * time.Millisecond)
	waitWaiters(t, clk, 1)
	clk.Advance(35 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	n, _ := newTestNet()
	_, _ = n.TransferTime(USEast, USWest, 1000)
	_, _ = n.TransferTime(USEast, USWest, 500)
	tr, by := n.Stats()
	if tr != 2 || by != 1500 {
		t.Fatalf("Stats = %d transfers, %d bytes", tr, by)
	}
}

func TestClockAccessor(t *testing.T) {
	clk := clock.NewSim(time.Time{})
	if New(clk).Clock() != clock.Clock(clk) {
		t.Fatal("Clock() returned wrong clock")
	}
}

func waitWaiters(t *testing.T, s *clock.Sim, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d clock waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}

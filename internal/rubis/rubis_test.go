package rubis

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/wfs"
)

func newDB(t *testing.T) *DB {
	t.Helper()
	fs := wfs.New(wfs.NewMapBackend(), wfs.WithBlockSize(16*1024))
	db, err := OpenDB(fs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestUserRoundTrip(t *testing.T) {
	db := newDB(t)
	id, err := db.RegisterUser(User{Name: "alice", Email: "a@x.com", Rating: 5})
	if err != nil {
		t.Fatal(err)
	}
	u, err := db.GetUser(id)
	if err != nil || u.Name != "alice" || u.ID != id {
		t.Fatalf("GetUser = %+v, %v", u, err)
	}
	if _, err := db.GetUser(99); err == nil {
		t.Fatal("missing user readable")
	}
	if _, err := db.GetUser(-1); err == nil {
		t.Fatal("negative id readable")
	}
}

func TestItemAndBids(t *testing.T) {
	db := newDB(t)
	seller, _ := db.RegisterUser(User{Name: "seller"})
	bidder, _ := db.RegisterUser(User{Name: "bidder"})
	itemID, err := db.ListItem(Item{SellerID: seller, Name: "rare book", StartPrice: 10, Quantity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.PlaceBid(itemID, bidder, 15); err != nil {
		t.Fatal(err)
	}
	if _, err := db.PlaceBid(itemID, bidder, 22); err != nil {
		t.Fatal(err)
	}
	it, err := db.GetItem(itemID)
	if err != nil {
		t.Fatal(err)
	}
	if it.NumBids != 2 || it.MaxBid != 22 {
		t.Fatalf("item after bids = %+v", it)
	}
	bids, err := db.ItemBids(itemID, 10)
	if err != nil || len(bids) != 2 {
		t.Fatalf("ItemBids = %v, %v", bids, err)
	}
	if bids[1].Amount != 22 {
		t.Fatalf("bid order wrong: %+v", bids)
	}
	// Limit trims to most recent.
	bids, _ = db.ItemBids(itemID, 1)
	if len(bids) != 1 || bids[0].Amount != 22 {
		t.Fatalf("limited bids = %+v", bids)
	}
	// Bid on a missing item fails.
	if _, err := db.PlaceBid(999, bidder, 5); err == nil {
		t.Fatal("bid on missing item accepted")
	}
}

func TestCommentsAndBuyNow(t *testing.T) {
	db := newDB(t)
	u, _ := db.RegisterUser(User{Name: "u"})
	itemID, _ := db.ListItem(Item{Name: "widget", Quantity: 2, BuyNow: 5})
	cid, err := db.AddComment(Comment{FromID: u, ToID: u, ItemID: itemID, Rating: 4, Text: "nice"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.GetComment(cid)
	if err != nil || c.Text != "nice" {
		t.Fatalf("GetComment = %+v, %v", c, err)
	}
	if err := db.BuyNow(itemID, u); err != nil {
		t.Fatal(err)
	}
	if err := db.BuyNow(itemID, u); err != nil {
		t.Fatal(err)
	}
	if err := db.BuyNow(itemID, u); err == nil {
		t.Fatal("sold-out item bought")
	}
	it, _ := db.GetItem(itemID)
	if it.Quantity != 0 {
		t.Fatalf("quantity = %d", it.Quantity)
	}
}

func TestPersistenceThroughFS(t *testing.T) {
	// Rows must actually live in the file system, not just memory.
	backend := wfs.NewMapBackend()
	fs := wfs.New(backend, wfs.WithBlockSize(16*1024))
	db, _ := OpenDB(fs)
	db.RegisterUser(User{Name: "durable"})
	if backend.Len() == 0 {
		t.Fatal("no objects written to backend")
	}
}

func TestRowTooLarge(t *testing.T) {
	db := newDB(t)
	big := strings.Repeat("x", SlotSize)
	if _, err := db.RegisterUser(User{Name: big, Email: big}); err == nil {
		t.Fatal("oversized row accepted")
	}
}

func TestPopulate(t *testing.T) {
	db := newDB(t)
	if err := Populate(db, 20, 30); err != nil {
		t.Fatal(err)
	}
	users, items, bids, comments := db.Counts()
	if users != 20 || items != 30 || bids != 0 || comments != 0 {
		t.Fatalf("counts = %d %d %d %d", users, items, bids, comments)
	}
	it, err := db.GetItem(29)
	if err != nil || it.Name != "item-29" {
		t.Fatalf("item 29 = %+v, %v", it, err)
	}
}

func TestEmulatorConfigValidation(t *testing.T) {
	if _, err := RunEmulator(EmulatorConfig{}); err == nil {
		t.Fatal("missing DB should fail")
	}
	db := newDB(t)
	if _, err := RunEmulator(EmulatorConfig{DB: db}); err == nil {
		t.Fatal("missing clock should fail")
	}
	if _, err := RunEmulator(EmulatorConfig{DB: db, Clock: clock.Real{}}); err == nil {
		t.Fatal("unpopulated DB should fail")
	}
}

func TestEmulatorRun(t *testing.T) {
	db := newDB(t)
	if err := Populate(db, 50, 100); err != nil {
		t.Fatal(err)
	}
	res, err := RunEmulator(EmulatorConfig{
		DB: db, Clock: clock.Real{}, Clients: 8, RequestsPerClient: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 400 {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	if res.Latency.Count() != 400 {
		t.Fatalf("latency samples = %d", res.Latency.Count())
	}
	// The mix must include both reads and writes.
	if res.PerKind[ReqBrowseItems] == 0 || res.PerKind[ReqPlaceBid] == 0 {
		t.Fatalf("mix = %v", res.PerKind)
	}
	// Reads dominate: browse+view (0.75 of the mix) must outnumber writes.
	reads := res.PerKind[ReqBrowseItems] + res.PerKind[ReqViewItem] + res.PerKind[ReqViewUser]
	writes := res.PerKind[ReqPlaceBid] + res.PerKind[ReqAddComment] + res.PerKind[ReqRegisterUser] + res.PerKind[ReqBuyNow]
	if reads <= 2*writes {
		t.Fatalf("mix not read-mostly: %d reads, %d writes", reads, writes)
	}
}

func TestEmulatorDeterministicWithSeed(t *testing.T) {
	run := func() map[RequestKind]int64 {
		db := newDB(t)
		Populate(db, 10, 20)
		res, err := RunEmulator(EmulatorConfig{
			DB: db, Clock: clock.Real{}, Clients: 4, RequestsPerClient: 25, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PerKind
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("seeded runs diverge on %v: %d vs %d", k, v, b[k])
		}
	}
}

func TestRequestKindString(t *testing.T) {
	kinds := []RequestKind{ReqBrowseItems, ReqViewItem, ReqViewUser, ReqPlaceBid,
		ReqAddComment, ReqRegisterUser, ReqBuyNow, RequestKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	_ = time.Now
}

func TestMixSumsToOne(t *testing.T) {
	sum := 0.0
	for _, m := range mix {
		sum += m.prob
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("mix sums to %v", sum)
	}
}

// Package rubis reimplements the RUBiS auction-site benchmark the paper
// runs unmodified on Wiera (Sec 5.4.2, Fig 12): an eBay-like application
// (users, items, bids, comments) whose database performs slot-granular
// file I/O through internal/wfs — the same path a MySQL instance takes
// through the paper's FUSE mount, with O_DIRECT semantics (wfs has no page
// cache, and the engine's internal cache is disabled to match the paper's
// 16 MB-minimum-buffer configuration).
//
// The package splits into the storage engine (DB, tables of fixed-size
// slots over wfs files) and the closed-loop client emulator (Emulator)
// driving the paper's browse/bid request mix.
package rubis

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"repro/internal/wfs"
)

// SlotSize is the fixed on-disk record size. 512 bytes fits every row type
// comfortably and packs 32 rows per 16 KiB block.
const SlotSize = 512

// Row types.

// User is a registered customer.
type User struct {
	ID      int64
	Name    string
	Email   string
	Rating  int
	Balance float64
	Region  string
}

// Item is an auction listing.
type Item struct {
	ID          int64
	SellerID    int64
	Name        string
	Description string
	Category    int
	Quantity    int
	StartPrice  float64
	BuyNow      float64
	MaxBid      float64
	NumBids     int
}

// Bid is one bid on an item.
type Bid struct {
	ID     int64
	ItemID int64
	UserID int64
	Amount float64
}

// Comment is user feedback.
type Comment struct {
	ID     int64
	FromID int64
	ToID   int64
	ItemID int64
	Rating int
	Text   string
}

// table is a slot file with an append cursor.
type table struct {
	mu   sync.Mutex
	file *wfs.File
	rows int64
}

// insert appends a row: encode receives the assigned row id (determined
// under the table lock, so concurrent inserts cannot embed an id that
// mismatches their slot) and returns the serialized row.
func (t *table) insert(encode func(id int64) ([]byte, error)) (int64, error) {
	t.mu.Lock()
	id := t.rows
	encoded, err := encode(id)
	if err != nil {
		t.mu.Unlock()
		return 0, err
	}
	if len(encoded) > SlotSize {
		t.mu.Unlock()
		return 0, fmt.Errorf("rubis: row of %d bytes exceeds slot size", len(encoded))
	}
	slot := make([]byte, SlotSize)
	copy(slot, encoded)
	if _, err := t.file.WriteAt(slot, id*SlotSize); err != nil {
		t.mu.Unlock()
		return 0, err
	}
	t.rows++
	t.mu.Unlock()
	// Durability sync: the paper configures MySQL with O_DIRECT and the
	// minimum buffer, so every committed row pays a synchronous metadata/
	// log write in addition to the page write.
	if err := t.file.Sync(); err != nil {
		return 0, err
	}
	return id, nil
}

func (t *table) read(id int64) ([]byte, error) {
	t.mu.Lock()
	rows := t.rows
	t.mu.Unlock()
	if id < 0 || id >= rows {
		return nil, fmt.Errorf("rubis: row %d out of range (%d rows)", id, rows)
	}
	buf := make([]byte, SlotSize)
	if _, err := t.file.ReadAt(buf, id*SlotSize); err != nil {
		return nil, err
	}
	return buf, nil
}

func (t *table) update(id int64, encoded []byte) error {
	if len(encoded) > SlotSize {
		return fmt.Errorf("rubis: row of %d bytes exceeds slot size", len(encoded))
	}
	t.mu.Lock()
	rows := t.rows
	t.mu.Unlock()
	if id < 0 || id >= rows {
		return fmt.Errorf("rubis: row %d out of range", id)
	}
	slot := make([]byte, SlotSize)
	copy(slot, encoded)
	if _, err := t.file.WriteAt(slot, id*SlotSize); err != nil {
		return err
	}
	return t.file.Sync()
}

func (t *table) count() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rows
}

// DB is the auction database.
type DB struct {
	fs       *wfs.FS
	users    *table
	items    *table
	bids     *table
	comments *table

	mu         sync.Mutex
	bidsByItem map[int64][]int64 // item id -> bid row ids (in-memory index)
}

// OpenDB creates (or re-creates) the database files on fs.
func OpenDB(fs *wfs.FS) (*DB, error) {
	db := &DB{fs: fs, bidsByItem: make(map[int64][]int64)}
	for _, spec := range []struct {
		name string
		tp   **table
	}{
		{"/rubis/users.tbl", &db.users},
		{"/rubis/items.tbl", &db.items},
		{"/rubis/bids.tbl", &db.bids},
		{"/rubis/comments.tbl", &db.comments},
	} {
		f, err := fs.Create(spec.name)
		if err != nil {
			return nil, err
		}
		*spec.tp = &table{file: f}
	}
	return db, nil
}

func encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// RegisterUser inserts a user and returns its id.
func (db *DB) RegisterUser(u User) (int64, error) {
	return db.users.insert(func(id int64) ([]byte, error) {
		u.ID = id
		return encode(u)
	})
}

// GetUser reads a user row.
func (db *DB) GetUser(id int64) (User, error) {
	raw, err := db.users.read(id)
	if err != nil {
		return User{}, err
	}
	var u User
	if err := decode(raw, &u); err != nil {
		return User{}, err
	}
	return u, nil
}

// ListItem inserts an item and returns its id.
func (db *DB) ListItem(it Item) (int64, error) {
	return db.items.insert(func(id int64) ([]byte, error) {
		it.ID = id
		return encode(it)
	})
}

// GetItem reads an item row.
func (db *DB) GetItem(id int64) (Item, error) {
	raw, err := db.items.read(id)
	if err != nil {
		return Item{}, err
	}
	var it Item
	if err := decode(raw, &it); err != nil {
		return Item{}, err
	}
	return it, nil
}

// PlaceBid records a bid: reads the item, inserts the bid, and updates the
// item's max bid (one read + two writes, like the real RUBiS PlaceBid
// transaction).
func (db *DB) PlaceBid(itemID, userID int64, amount float64) (int64, error) {
	it, err := db.GetItem(itemID)
	if err != nil {
		return 0, err
	}
	bidID, err := db.bids.insert(func(id int64) ([]byte, error) {
		return encode(Bid{ID: id, ItemID: itemID, UserID: userID, Amount: amount})
	})
	if err != nil {
		return 0, err
	}
	if amount > it.MaxBid {
		it.MaxBid = amount
	}
	it.NumBids++
	enc, err := encode(it)
	if err != nil {
		return 0, err
	}
	if err := db.items.update(itemID, enc); err != nil {
		return 0, err
	}
	db.mu.Lock()
	db.bidsByItem[itemID] = append(db.bidsByItem[itemID], bidID)
	db.mu.Unlock()
	return bidID, nil
}

// ItemBids reads up to limit most recent bids for an item.
func (db *DB) ItemBids(itemID int64, limit int) ([]Bid, error) {
	db.mu.Lock()
	ids := append([]int64(nil), db.bidsByItem[itemID]...)
	db.mu.Unlock()
	if len(ids) > limit {
		ids = ids[len(ids)-limit:]
	}
	out := make([]Bid, 0, len(ids))
	for _, id := range ids {
		raw, err := db.bids.read(id)
		if err != nil {
			return nil, err
		}
		var b Bid
		if err := decode(raw, &b); err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// AddComment inserts a comment.
func (db *DB) AddComment(c Comment) (int64, error) {
	return db.comments.insert(func(id int64) ([]byte, error) {
		c.ID = id
		return encode(c)
	})
}

// GetComment reads a comment row.
func (db *DB) GetComment(id int64) (Comment, error) {
	raw, err := db.comments.read(id)
	if err != nil {
		return Comment{}, err
	}
	var c Comment
	if err := decode(raw, &c); err != nil {
		return Comment{}, err
	}
	return c, nil
}

// BuyNow executes an immediate purchase: item read + quantity update.
func (db *DB) BuyNow(itemID, userID int64) error {
	it, err := db.GetItem(itemID)
	if err != nil {
		return err
	}
	if it.Quantity <= 0 {
		return errors.New("rubis: item sold out")
	}
	it.Quantity--
	enc, err := encode(it)
	if err != nil {
		return err
	}
	return db.items.update(itemID, enc)
}

// Counts reports table sizes (users, items, bids, comments).
func (db *DB) Counts() (int64, int64, int64, int64) {
	return db.users.count(), db.items.count(), db.bids.count(), db.comments.count()
}

package rubis

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
)

// RequestKind is one emulated web interaction.
type RequestKind int

// The RUBiS browse/bid mix interactions.
const (
	ReqBrowseItems RequestKind = iota
	ReqViewItem
	ReqViewUser
	ReqPlaceBid
	ReqAddComment
	ReqRegisterUser
	ReqBuyNow
)

// String names the request kind.
func (k RequestKind) String() string {
	switch k {
	case ReqBrowseItems:
		return "BrowseItems"
	case ReqViewItem:
		return "ViewItem"
	case ReqViewUser:
		return "ViewUser"
	case ReqPlaceBid:
		return "PlaceBid"
	case ReqAddComment:
		return "AddComment"
	case ReqRegisterUser:
		return "RegisterUser"
	case ReqBuyNow:
		return "BuyNow"
	default:
		return fmt.Sprintf("RequestKind(%d)", int(k))
	}
}

// mix is the default browse/bid transition mix (read-mostly, matching the
// RUBiS bidding workload's ~85/15 read/write split).
var mix = []struct {
	kind RequestKind
	prob float64
}{
	{ReqBrowseItems, 0.35},
	{ReqViewItem, 0.30},
	{ReqViewUser, 0.10},
	{ReqPlaceBid, 0.15},
	{ReqAddComment, 0.04},
	{ReqRegisterUser, 0.01},
	{ReqBuyNow, 0.05},
}

// EmulatorConfig parameterizes a run.
type EmulatorConfig struct {
	// DB is the populated database under test.
	DB *DB
	// Clock measures throughput in simulated time.
	Clock clock.Clock
	// Clients is the number of concurrent simulated clients (the paper
	// uses 300).
	Clients int
	// RequestsPerClient bounds each client's session length.
	RequestsPerClient int
	// BrowseReads is how many item rows a browse page touches.
	BrowseReads int
	// Seed makes runs reproducible.
	Seed int64
}

func (c *EmulatorConfig) defaults() error {
	if c.DB == nil {
		return errors.New("rubis: DB required")
	}
	if c.Clock == nil {
		return errors.New("rubis: clock required")
	}
	if c.Clients <= 0 {
		c.Clients = 10
	}
	if c.RequestsPerClient <= 0 {
		c.RequestsPerClient = 50
	}
	if c.BrowseReads <= 0 {
		c.BrowseReads = 5
	}
	return nil
}

// EmulatorResult summarizes a run.
type EmulatorResult struct {
	Requests   int
	Errors     int64
	Duration   time.Duration // clock time
	Throughput float64       // requests/sec of clock time
	Latency    *stats.Histogram
	PerKind    map[RequestKind]int64
}

// Populate loads users and items (the RUBiS database initialization; the
// paper populates 50,000 items and 50,000 customers — tests use fewer).
func Populate(db *DB, users, items int) error {
	for i := 0; i < users; i++ {
		if _, err := db.RegisterUser(User{
			Name: fmt.Sprintf("user-%d", i), Email: fmt.Sprintf("u%d@example.com", i),
			Region: "us-east",
		}); err != nil {
			return err
		}
	}
	for i := 0; i < items; i++ {
		if _, err := db.ListItem(Item{
			SellerID: int64(i % max(users, 1)), Name: fmt.Sprintf("item-%d", i),
			Description: "a fine auction item", Category: i % 20,
			Quantity: 10, StartPrice: 1.0, BuyNow: 100.0,
		}); err != nil {
			return err
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RunEmulator drives the closed-loop client mix and reports throughput in
// clock time.
func RunEmulator(cfg EmulatorConfig) (*EmulatorResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	users, items, _, _ := cfg.DB.Counts()
	if users == 0 || items == 0 {
		return nil, errors.New("rubis: database not populated")
	}
	res := &EmulatorResult{
		Latency: stats.NewHistogram(),
		PerKind: make(map[RequestKind]int64),
	}
	var mu sync.Mutex
	var errCount stats.Counter

	start := cfg.Clock.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < cfg.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(cl)))
			for r := 0; r < cfg.RequestsPerClient; r++ {
				kind := drawKind(rng)
				opStart := cfg.Clock.Now()
				err := runRequest(cfg, rng, kind, users, items)
				if err != nil {
					errCount.Inc()
					continue
				}
				res.Latency.Record(cfg.Clock.Since(opStart))
				mu.Lock()
				res.PerKind[kind]++
				mu.Unlock()
			}
		}(cl)
	}
	wg.Wait()
	res.Duration = cfg.Clock.Since(start)
	res.Requests = cfg.Clients * cfg.RequestsPerClient
	res.Errors = errCount.Value()
	if res.Duration > 0 {
		res.Throughput = float64(res.Requests-int(res.Errors)) / res.Duration.Seconds()
	}
	return res, nil
}

func drawKind(rng *rand.Rand) RequestKind {
	r := rng.Float64()
	acc := 0.0
	for _, m := range mix {
		acc += m.prob
		if r < acc {
			return m.kind
		}
	}
	return ReqBrowseItems
}

func runRequest(cfg EmulatorConfig, rng *rand.Rand, kind RequestKind, users, items int64) error {
	db := cfg.DB
	randItem := func() int64 { return rng.Int63n(items) }
	randUser := func() int64 { return rng.Int63n(users) }
	switch kind {
	case ReqBrowseItems:
		for i := 0; i < cfg.BrowseReads; i++ {
			if _, err := db.GetItem(randItem()); err != nil {
				return err
			}
		}
		return nil
	case ReqViewItem:
		id := randItem()
		if _, err := db.GetItem(id); err != nil {
			return err
		}
		_, err := db.ItemBids(id, 5)
		return err
	case ReqViewUser:
		_, err := db.GetUser(randUser())
		return err
	case ReqPlaceBid:
		_, err := db.PlaceBid(randItem(), randUser(), rng.Float64()*100)
		return err
	case ReqAddComment:
		_, err := db.AddComment(Comment{
			FromID: randUser(), ToID: randUser(), ItemID: randItem(),
			Rating: rng.Intn(5), Text: "great seller",
		})
		return err
	case ReqRegisterUser:
		_, err := db.RegisterUser(User{Name: "new", Email: "new@example.com", Region: "us-east"})
		return err
	case ReqBuyNow:
		err := db.BuyNow(randItem(), randUser())
		if err != nil && err.Error() == "rubis: item sold out" {
			return nil // application-level outcome, not a system error
		}
		return err
	default:
		return fmt.Errorf("rubis: unknown request kind %v", kind)
	}
}

package flight

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DumpResponse is the JSON shape served at /debug/requests (and returned by
// the MethodFlightDump RPC in internal/wiera).
type DumpResponse struct {
	TotalSeen int64    `json:"totalSeen"`
	SlowSeen  int64    `json:"slowSeen"`
	Records   []Record `json:"records"`
}

// Dump snapshots the recorder into a DumpResponse. slowOnly selects the
// always-keep slowlog ring; max <= 0 returns everything retained.
func Dump(r *Recorder, slowOnly bool, max int) DumpResponse {
	seen, slow := r.Totals()
	resp := DumpResponse{TotalSeen: seen, SlowSeen: slow}
	if slowOnly {
		resp.Records = r.Slow(max)
	} else {
		resp.Records = r.Recent(max)
	}
	if resp.Records == nil {
		resp.Records = []Record{}
	}
	return resp
}

// maxHandlerRecords caps one /debug/requests response regardless of ?n, so
// the endpoint cannot be turned into a bandwidth amplifier.
const maxHandlerRecords = 1000

// Handler serves the flight recorder at /debug/requests.
//
//	?slow=1       only the always-keep slow/expensive log
//	?n=50         cap the record count (default 100, max 1000; malformed
//	              or non-positive values fall back to the default)
//	?format=text  human-readable table instead of JSON
func Handler(r *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		slowOnly := q.Get("slow") == "1" || q.Get("slow") == "true"
		max := 100
		if v := q.Get("n"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				max = n
			}
		}
		if max > maxHandlerRecords {
			max = maxHandlerRecords
		}
		resp := Dump(r, slowOnly, max)
		if q.Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "%d requests seen, %d slow/expensive\n\n",
				resp.TotalSeen, resp.SlowSeen)
			w.Write([]byte(RenderRecords(resp.Records)))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}

// RenderRecords formats records as a human-readable table with a per-record
// hop breakdown; shared by /debug/requests?format=text and `wieractl slow`.
func RenderRecords(recs []Record) string {
	if len(recs) == 0 {
		return "no records\n"
	}
	var b strings.Builder
	for _, r := range recs {
		flags := ""
		if r.Slow {
			flags += " SLOW"
		}
		if r.Expensive {
			flags += " EXPENSIVE"
		}
		status := "ok"
		if r.Err != "" {
			status = "err=" + r.Err
		}
		fmt.Fprintf(&b, "#%d %s %-4s %-24s %9s $%.8f %s%s",
			r.ID, r.Node, strings.ToUpper(r.Op), r.Key,
			fmtDur(r.Total), r.CostUSD, status, flags)
		if r.TraceID != "" {
			fmt.Fprintf(&b, " trace=%s", r.TraceID)
		}
		b.WriteByte('\n')
		for _, h := range r.Hops {
			name := h.Name
			if h.Class != "" {
				name += "/" + h.Class
			}
			fmt.Fprintf(&b, "    %-6s %-28s %9s", h.Kind, name, fmtDur(h.Duration))
			if h.Wait > 0 {
				fmt.Fprintf(&b, " (wait %s)", fmtDur(h.Wait))
			}
			if h.Bytes > 0 {
				fmt.Fprintf(&b, " %dB", h.Bytes)
			}
			if h.CostUSD > 0 {
				fmt.Fprintf(&b, " $%.10f", h.CostUSD)
			}
			if h.Err != "" {
				fmt.Fprintf(&b, " err=%s", h.Err)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RenderHopSummary aggregates hop time by kind across records — the "where
// did the time go" one-liner used by `wieractl slow -summary`.
func RenderHopSummary(recs []Record) string {
	type agg struct {
		n     int
		total time.Duration
		cost  float64
	}
	byKind := map[string]*agg{}
	for _, r := range recs {
		for _, h := range r.Hops {
			a := byKind[h.Kind]
			if a == nil {
				a = &agg{}
				byKind[h.Kind] = a
			}
			a.n++
			a.total += h.Duration
			a.cost += h.CostUSD
		}
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %6s %12s %12s %14s\n", "hop", "count", "total", "mean", "cost")
	for _, k := range kinds {
		a := byKind[k]
		mean := time.Duration(0)
		if a.n > 0 {
			mean = a.total / time.Duration(a.n)
		}
		fmt.Fprintf(&b, "%-8s %6d %12s %12s $%.10f\n",
			k, a.n, fmtDur(a.total), fmtDur(mean), a.cost)
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	default:
		return d.String()
	}
}

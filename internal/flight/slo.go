package flight

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/telemetry"
	"repro/internal/watch"
)

// Objective declares one service-level objective: a good/total event ratio
// that must stay at or above Target. Latency objectives count requests under
// Threshold as good; availability objectives (Threshold == 0) count
// non-error requests as good. Where the events come from is the Source's
// business — the engine only ever sees cumulative (good, total) pairs, which
// is exactly what the telemetry histograms' log buckets and the error
// counters already provide.
type Objective struct {
	Name string // gauge label, e.g. "get-p99"
	Op   string // informational: which op the objective covers

	// Threshold is the latency bound for a latency SLO; 0 marks an
	// availability SLO.
	Threshold time.Duration
	// Target is the good-event ratio objective, e.g. 0.999.
	Target float64
	// FastWindow and SlowWindow are the two burn-rate windows (Google
	// SRE-workbook multi-window alerting): the alert fires only when BOTH
	// windows burn at AlertBurn or more, so a brief blip (fails slow
	// window) and a long-ago incident (fails fast window) both stay quiet.
	FastWindow, SlowWindow time.Duration
	// AlertBurn is the burn-rate alert threshold (default 2: consuming
	// error budget twice as fast as the objective allows).
	AlertBurn float64

	// Source reads the cumulative (good, total) event counts.
	Source Source
}

// Source supplies monotone cumulative good/total event counts.
type Source func() (good, total int64)

// DefaultAlertBurn is the alert threshold used when an Objective leaves
// AlertBurn zero.
const DefaultAlertBurn = 2.0

// Status is one objective's evaluation at a tick.
type Status struct {
	Objective string
	Op        string
	Target    float64
	// FastBurn and SlowBurn are the burn rates over the two windows; Burn
	// is their minimum (the rate the alert condition is actually holding
	// at — both windows must clear AlertBurn to fire).
	FastBurn, SlowBurn, Burn float64
	// GoodRatio is the good/total ratio over the slow window.
	GoodRatio float64
	Firing    bool
	// Since is how long the objective has been continuously firing.
	Since time.Duration
}

type sloSample struct {
	at          time.Time
	good, total int64
}

type objectiveState struct {
	obj         Objective
	samples     []sloSample // oldest first; [0] kept as pre-window baseline
	firingSince time.Time

	burnFast, burnSlow, violation, goodRatio *telemetry.Gauge
}

// EngineConfig configures an Engine.
type EngineConfig struct {
	Clock    clock.Clock
	Interval time.Duration // evaluation period (default 1s)
	// Registry receives the slo_* gauges (nil skips export).
	Registry     *telemetry.Registry
	Node, Region string
	// OnStatus, when set, is invoked for every objective at every
	// evaluation — the wiera SLO monitor turns these into policy events.
	OnStatus func(Status)
	// Journal, when set, receives slo.fire / slo.clear events on alert
	// transitions, attributed to Node.
	Journal *watch.Journal
}

// Engine evaluates declared objectives with multi-window burn rates and
// exports slo_burn_rate / slo_violation / slo_good_ratio gauges. A nil
// *Engine is a valid no-op.
type Engine struct {
	clk      clock.Clock
	interval time.Duration
	onStatus func(Status)
	journal  *watch.Journal
	node     string

	mu     sync.Mutex
	states []*objectiveState
	last   []Status // most recent EvaluateNow result (autoscaler signal)

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewEngine builds an engine over the given objectives. Objectives without
// a Source are dropped.
func NewEngine(cfg EngineConfig, objectives ...Objective) *Engine {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	e := &Engine{
		clk:      cfg.Clock,
		interval: cfg.Interval,
		onStatus: cfg.OnStatus,
		journal:  cfg.Journal,
		node:     cfg.Node,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	var burn, viol, ratio *telemetry.GaugeVec
	if cfg.Registry != nil {
		burn = cfg.Registry.Gauge("slo_burn_rate",
			"Error-budget burn rate per objective and window.",
			"slo", "window", "node", "region")
		viol = cfg.Registry.Gauge("slo_violation",
			"1 while the objective's multi-window burn alert is firing.",
			"slo", "node", "region")
		ratio = cfg.Registry.Gauge("slo_good_ratio",
			"Good-event ratio over the slow window per objective.",
			"slo", "node", "region")
	}
	for _, o := range objectives {
		if o.Source == nil {
			continue
		}
		if o.AlertBurn <= 0 {
			o.AlertBurn = DefaultAlertBurn
		}
		if o.FastWindow <= 0 {
			o.FastWindow = 5 * time.Minute
		}
		if o.SlowWindow <= 0 {
			o.SlowWindow = time.Hour
		}
		st := &objectiveState{obj: o}
		if burn != nil {
			st.burnFast = burn.With(o.Name, "fast", cfg.Node, cfg.Region)
			st.burnSlow = burn.With(o.Name, "slow", cfg.Node, cfg.Region)
			st.violation = viol.With(o.Name, cfg.Node, cfg.Region)
			st.goodRatio = ratio.With(o.Name, cfg.Node, cfg.Region)
		}
		e.states = append(e.states, st)
	}
	return e
}

// Objectives reports how many objectives the engine evaluates.
func (e *Engine) Objectives() int {
	if e == nil {
		return 0
	}
	return len(e.states)
}

// Start launches the evaluation loop. No-op on a nil engine; at most one
// loop runs regardless of how many times Start is called.
func (e *Engine) Start() {
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	go func() {
		defer close(e.done)
		for {
			select {
			case <-e.stop:
				return
			case <-e.clk.After(e.interval):
				e.EvaluateNow()
			}
		}
	}()
}

// Stop halts the evaluation loop and waits for it to exit. Safe to call
// repeatedly, and before Start.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.stopOnce.Do(func() { close(e.stop) })
	e.mu.Lock()
	started := e.started
	e.mu.Unlock()
	if started {
		<-e.done
	}
}

// EvaluateNow samples every source and evaluates every objective
// immediately, returning the statuses. Tests drive the engine
// deterministically with a simulated clock and explicit EvaluateNow calls.
func (e *Engine) EvaluateNow() []Status {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.clk.Now()
	out := make([]Status, 0, len(e.states))
	for _, st := range e.states {
		good, total := st.obj.Source()
		st.push(sloSample{at: now, good: good, total: total}, now)
		wasFiring := !st.firingSince.IsZero()
		firedFor := time.Duration(0)
		if wasFiring {
			firedFor = now.Sub(st.firingSince)
		}
		s := st.evaluate(now)
		if s.Firing != wasFiring {
			typ, msg := "slo.fire", fmt.Sprintf("%s firing: burn %.2f (fast %.2f, slow %.2f)",
				s.Objective, s.Burn, s.FastBurn, s.SlowBurn)
			if !s.Firing {
				typ, msg = "slo.clear", fmt.Sprintf("%s cleared after %v", s.Objective, firedFor)
			}
			e.journal.Record(typ, e.node, msg, map[string]string{"slo": s.Objective, "op": s.Op})
		}
		if st.violation != nil {
			st.burnFast.Set(s.FastBurn)
			st.burnSlow.Set(s.SlowBurn)
			st.goodRatio.Set(s.GoodRatio)
			if s.Firing {
				st.violation.Set(1)
			} else {
				st.violation.Set(0)
			}
		}
		if e.onStatus != nil {
			e.onStatus(s)
		}
		out = append(out, s)
	}
	e.last = out
	return out
}

// Statuses returns the most recent evaluation's statuses without
// re-sampling the sources, so passive consumers (the autoscaler's signal
// collection) never perturb the evaluation cadence or alert streaks. Nil
// until the first evaluation; nil-safe on a nil engine.
func (e *Engine) Statuses() []Status {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Status(nil), e.last...)
}

// push appends a sample and prunes history, always keeping one sample older
// than the slow window as the diff baseline.
func (st *objectiveState) push(s sloSample, now time.Time) {
	st.samples = append(st.samples, s)
	horizon := now.Add(-st.obj.SlowWindow)
	for len(st.samples) > 2 && !st.samples[1].at.After(horizon) {
		st.samples = st.samples[1:]
	}
}

// burnOver computes the burn rate and good ratio across window w ending at
// the newest sample, diffing against the best available baseline (the
// latest sample at or before now-w, falling back to the oldest retained).
func (st *objectiveState) burnOver(now time.Time, w time.Duration) (burn, goodRatio float64) {
	n := len(st.samples)
	if n < 2 {
		return 0, 1
	}
	cur := st.samples[n-1]
	cut := now.Add(-w)
	base := st.samples[0]
	for _, s := range st.samples[:n-1] {
		if s.at.After(cut) {
			break
		}
		base = s
	}
	dTotal := cur.total - base.total
	if dTotal <= 0 {
		return 0, 1
	}
	dGood := cur.good - base.good
	if dGood < 0 {
		dGood = 0
	}
	goodRatio = float64(dGood) / float64(dTotal)
	budget := 1 - st.obj.Target
	if budget <= 0 {
		budget = 1e-9
	}
	return (1 - goodRatio) / budget, goodRatio
}

func (st *objectiveState) evaluate(now time.Time) Status {
	fast, _ := st.burnOver(now, st.obj.FastWindow)
	slow, ratio := st.burnOver(now, st.obj.SlowWindow)
	s := Status{
		Objective: st.obj.Name,
		Op:        st.obj.Op,
		Target:    st.obj.Target,
		FastBurn:  fast,
		SlowBurn:  slow,
		GoodRatio: ratio,
	}
	s.Burn = fast
	if slow < fast {
		s.Burn = slow
	}
	s.Firing = fast >= st.obj.AlertBurn && slow >= st.obj.AlertBurn
	if s.Firing {
		if st.firingSince.IsZero() {
			st.firingSince = now
		}
		s.Since = now.Sub(st.firingSince)
	} else {
		st.firingSince = time.Time{}
	}
	return s
}

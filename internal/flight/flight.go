// Package flight is the request-level observability layer on top of
// internal/telemetry: a fixed-size ring of per-request flight records, each
// capturing the full hop breakdown of one PUT/GET — queue (gate) wait, tier
// I/O per tier touched, fan-out RPC per peer, lock acquisition, repair work
// triggered — plus the attributed dollar cost of every hop (internal/cost
// Table 4 rates). Histograms answer "how slow is the system"; flight records
// answer "why was THIS request slow, and what did it cost".
//
// A second always-keep ring (the slowlog, à la Dapper) retains every request
// that crossed a per-op latency threshold or a dollar-cost threshold, so an
// incident's evidence survives long after the main ring has wrapped. Both
// rings are exposed at /debug/requests (cmd/wiera) and `wieractl slow`.
//
// The package also houses the SLO burn-rate engine (slo.go) that turns the
// telemetry histograms into policy-visible SLOViolation events.
package flight

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Hop kinds. A record's hops reconstruct where a request's time and money
// went.
const (
	// HopQueue is time spent blocked at the node's operation gate (a policy
	// change freezing the instance, Sec 3.3.2).
	HopQueue = "queue"
	// HopLock is global per-key lock acquisition (coordination service).
	HopLock = "lock"
	// HopTier is one storage-tier Put/Get, attributed with its priced class.
	HopTier = "tier"
	// HopRPC is one peer RPC: a replication fan-out, forward, or peer read.
	HopRPC = "rpc"
	// HopRepair marks repair work triggered by this request (read repair).
	HopRepair = "repair"
	// HopCache marks a request served from a local side cache (a hot-key
	// replica) instead of the authoritative data path.
	HopCache = "cache"
)

// Hop is one step of a request's path.
type Hop struct {
	Kind  string `json:"kind"`
	Name  string `json:"name"`            // tier label, peer name, lock key...
	Class string `json:"class,omitempty"` // priced storage class for tier hops
	// Wait is time queued before service began (IOPS admission); Duration is
	// the full hop time including Wait.
	Wait     time.Duration `json:"waitNs,omitempty"`
	Duration time.Duration `json:"durationNs"`
	Bytes    int64         `json:"bytes,omitempty"`
	CostUSD  float64       `json:"costUsd,omitempty"`
	Err      string        `json:"err,omitempty"`
}

// Record is one completed request.
type Record struct {
	ID      uint64        `json:"id"`
	Op      string        `json:"op"` // "put" or "get"
	Key     string        `json:"key"`
	Node    string        `json:"node"`
	Region  string        `json:"region"`
	Policy  string        `json:"policy"`
	TraceID string        `json:"traceId,omitempty"`
	Tenant  string        `json:"tenant,omitempty"`
	Start   time.Time     `json:"start"`
	Total   time.Duration `json:"totalNs"`
	CostUSD float64       `json:"costUsd"`
	Err     string        `json:"err,omitempty"`
	// Slow and Expensive mark why the record also entered the slowlog.
	Slow      bool  `json:"slow,omitempty"`
	Expensive bool  `json:"expensive,omitempty"`
	Hops      []Hop `json:"hops,omitempty"`
}

// Config sizes a Recorder. Zero values take defaults.
type Config struct {
	// Capacity bounds the main ring (default 1024).
	Capacity int
	// SlowCapacity bounds the always-keep slowlog ring (default 256).
	SlowCapacity int
	// SlowPut / SlowGet are the slowlog latency thresholds per op; a
	// non-positive threshold disables slow-flagging for that op.
	SlowPut, SlowGet time.Duration
	// ExpensiveUSD flags requests whose attributed cost meets the threshold
	// (<= 0 disables).
	ExpensiveUSD float64
	// Now is the time source (default time.Now; pass the simnet clock's so
	// durations line up with simulated latencies).
	Now func() time.Time
}

// Default thresholds: DefaultSlowPut matches the paper's Fig 5(a) latency
// threshold, so the slowlog fills exactly when the DynamicConsistency policy
// would be getting nervous.
const (
	DefaultCapacity     = 1024
	DefaultSlowCapacity = 256
	DefaultSlowPut      = 800 * time.Millisecond
	DefaultSlowGet      = 400 * time.Millisecond
)

// Recorder retains completed request records in two bounded rings. A nil
// *Recorder is valid: Begin returns a nil *Active and everything no-ops, so
// uninstrumented runs pay a single nil check per request.
type Recorder struct {
	now          func() time.Time
	slowPut      atomic.Int64 // ns; <= 0 disables
	slowGet      atomic.Int64
	expensiveUSD atomic.Uint64 // float64 bits
	nextID       atomic.Uint64
	seen         atomic.Int64
	slowSeen     atomic.Int64

	onSlowMu sync.RWMutex
	onSlow   func(Record)

	mu   sync.Mutex
	ring []Record
	head int

	slowMu   sync.Mutex
	slowRing []Record
	slowHead int
}

// NewRecorder builds a recorder from cfg.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.SlowCapacity <= 0 {
		cfg.SlowCapacity = DefaultSlowCapacity
	}
	if cfg.SlowPut == 0 {
		cfg.SlowPut = DefaultSlowPut
	}
	if cfg.SlowGet == 0 {
		cfg.SlowGet = DefaultSlowGet
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	r := &Recorder{
		now:      cfg.Now,
		ring:     make([]Record, 0, cfg.Capacity),
		slowRing: make([]Record, 0, cfg.SlowCapacity),
	}
	r.slowPut.Store(int64(cfg.SlowPut))
	r.slowGet.Store(int64(cfg.SlowGet))
	r.SetExpensiveUSD(cfg.ExpensiveUSD)
	return r
}

// SetSlowThresholds changes the per-op slowlog latency thresholds at run
// time (non-positive disables that op's flagging).
func (r *Recorder) SetSlowThresholds(put, get time.Duration) {
	if r == nil {
		return
	}
	r.slowPut.Store(int64(put))
	r.slowGet.Store(int64(get))
}

// SetExpensiveUSD changes the dollar-cost slowlog threshold (<= 0 disables).
func (r *Recorder) SetExpensiveUSD(v float64) {
	if r == nil {
		return
	}
	bits := uint64(0)
	if v > 0 {
		bits = floatBits(v)
	}
	r.expensiveUSD.Store(bits)
}

// OnSlow installs a hook invoked (synchronously, at End) for every record
// entering the slowlog — the transport layer uses it to force trace sampling
// around slow requests.
func (r *Recorder) OnSlow(fn func(Record)) {
	if r == nil {
		return
	}
	r.onSlowMu.Lock()
	r.onSlow = fn
	r.onSlowMu.Unlock()
}

// Begin opens a flight record for one request. The returned Active is
// carried through the operation via NewContext; nil receivers and results
// are valid no-ops.
func (r *Recorder) Begin(op, key, node, region, policy string) *Active {
	if r == nil {
		return nil
	}
	return &Active{
		rec: r,
		r: Record{
			ID: r.nextID.Add(1), Op: op, Key: key, Node: node,
			Region: region, Policy: policy, Start: r.now(),
		},
	}
}

// Totals reports how many records completed and how many entered the
// slowlog over the recorder's lifetime (rings may have evicted older ones).
func (r *Recorder) Totals() (seen, slow int64) {
	if r == nil {
		return 0, 0
	}
	return r.seen.Load(), r.slowSeen.Load()
}

// Recent returns up to max completed records, newest first (max <= 0 means
// all retained).
func (r *Recorder) Recent(max int) []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return newestFirst(r.ring, r.head, max)
}

// Slow returns up to max slowlog records, newest first (max <= 0 means all
// retained).
func (r *Recorder) Slow(max int) []Record {
	if r == nil {
		return nil
	}
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	return newestFirst(r.slowRing, r.slowHead, max)
}

// newestFirst copies a ring (head = next overwrite slot = oldest element
// when full) into newest-first order, bounded by max.
func newestFirst(ring []Record, head, max int) []Record {
	n := len(ring)
	if max <= 0 || max > n {
		max = n
	}
	out := make([]Record, 0, max)
	for i := 0; i < max; i++ {
		// Walk backwards from the newest element (head-1 when full/wrapped;
		// len-1 while still filling).
		idx := head - 1 - i
		if len(ring) == cap(ring) {
			idx = ((head-1-i)%n + n) % n
		} else {
			idx = n - 1 - i
		}
		if idx < 0 {
			break
		}
		out = append(out, ring[idx])
	}
	return out
}

// complete files a finished record into the rings.
func (r *Recorder) complete(rec Record) {
	r.seen.Add(1)
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
	} else if cap(r.ring) > 0 {
		r.ring[r.head] = rec
		r.head = (r.head + 1) % cap(r.ring)
	}
	r.mu.Unlock()
	if !rec.Slow && !rec.Expensive {
		return
	}
	r.slowSeen.Add(1)
	r.slowMu.Lock()
	if len(r.slowRing) < cap(r.slowRing) {
		r.slowRing = append(r.slowRing, rec)
	} else if cap(r.slowRing) > 0 {
		r.slowRing[r.slowHead] = rec
		r.slowHead = (r.slowHead + 1) % cap(r.slowRing)
	}
	r.slowMu.Unlock()
	r.onSlowMu.RLock()
	fn := r.onSlow
	r.onSlowMu.RUnlock()
	if fn != nil {
		fn(rec)
	}
}

// slowThreshold returns the latency threshold for op (0 = disabled).
func (r *Recorder) slowThreshold(op string) time.Duration {
	switch op {
	case "put":
		return time.Duration(r.slowPut.Load())
	case "get":
		return time.Duration(r.slowGet.Load())
	default:
		return 0
	}
}

// Active is one in-flight request's record under construction. Hops may be
// added concurrently (replication fan-outs record from per-peer goroutines).
// A nil *Active is valid and all methods no-op.
type Active struct {
	rec *Recorder
	mu  sync.Mutex
	r   Record
	end bool
}

// AddHop appends one hop to the record.
func (a *Active) AddHop(h Hop) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.end {
		a.r.Hops = append(a.r.Hops, h)
		a.r.CostUSD += h.CostUSD
	}
	a.mu.Unlock()
}

// AddCost attributes extra dollars not tied to a single hop.
func (a *Active) AddCost(usd float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.end {
		a.r.CostUSD += usd
	}
	a.mu.Unlock()
}

// SetTraceID links the record to its distributed trace (when sampled).
func (a *Active) SetTraceID(id string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.r.TraceID = id
	a.mu.Unlock()
}

// SetTenant tags the record with the tenant the request belongs to.
func (a *Active) SetTenant(id string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.r.Tenant = id
	a.mu.Unlock()
}

// End finalizes the record and files it. Idempotent; the first call wins.
func (a *Active) End(err error) {
	if a == nil || a.rec == nil {
		return
	}
	a.mu.Lock()
	if a.end {
		a.mu.Unlock()
		return
	}
	a.end = true
	a.r.Total = a.rec.now().Sub(a.r.Start)
	if err != nil {
		a.r.Err = err.Error()
	}
	if th := a.rec.slowThreshold(a.r.Op); th > 0 && a.r.Total >= th {
		a.r.Slow = true
	}
	if bits := a.rec.expensiveUSD.Load(); bits != 0 && a.r.CostUSD >= floatFromBits(bits) {
		a.r.Expensive = true
	}
	rec := a.r
	a.mu.Unlock()
	a.rec.complete(rec)
}

// --- context plumbing ---------------------------------------------------

type activeKey struct{}

// NewContext returns ctx carrying the active record.
func NewContext(ctx context.Context, a *Active) context.Context {
	if a == nil {
		return ctx
	}
	return context.WithValue(ctx, activeKey{}, a)
}

// FromContext returns the active record carried by ctx, or nil.
func FromContext(ctx context.Context) *Active {
	if ctx == nil {
		return nil
	}
	a, _ := ctx.Value(activeKey{}).(*Active)
	return a
}

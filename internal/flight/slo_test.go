package flight

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/telemetry"
)

// counters is a mutable cumulative (good, total) source.
type counters struct{ good, total atomic.Int64 }

func (c *counters) source() Source {
	return func() (int64, int64) { return c.good.Load(), c.total.Load() }
}

// add records n events of which g were good.
func (c *counters) add(g, n int64) {
	c.good.Add(g)
	c.total.Add(n)
}

// tick advances the sim clock and evaluates, returning the single status.
func tick(t *testing.T, e *Engine, sim *clock.Sim, d time.Duration) Status {
	t.Helper()
	sim.Advance(d)
	sts := e.EvaluateNow()
	if len(sts) != 1 {
		t.Fatalf("EvaluateNow returned %d statuses, want 1", len(sts))
	}
	return sts[0]
}

func newTestEngine(t *testing.T, src *counters, reg *telemetry.Registry) (*Engine, *clock.Sim) {
	t.Helper()
	sim := clock.NewSim(time.Time{})
	e := NewEngine(EngineConfig{Clock: sim, Registry: reg, Node: "n1", Region: "us-west"},
		Objective{
			Name: "put-latency", Op: "put", Threshold: 800 * time.Millisecond,
			Target:     0.9, // 10% error budget: burn = badFraction / 0.1
			FastWindow: 30 * time.Second,
			SlowWindow: 2 * time.Minute,
			Source:     src.source(),
		})
	if e.Objectives() != 1 {
		t.Fatalf("engine kept %d objectives, want 1", e.Objectives())
	}
	return e, sim
}

func TestBurnRateComputation(t *testing.T) {
	src := &counters{}
	e, sim := newTestEngine(t, src, nil)

	// First sample: no baseline yet, burn 0, ratio 1.
	src.add(100, 100)
	if st := tick(t, e, sim, time.Second); st.Burn != 0 || st.GoodRatio != 1 || st.Firing {
		t.Fatalf("first tick = %+v", st)
	}
	// 80/100 good in the next second: bad fraction 0.2, budget 0.1 → burn 2.
	src.add(80, 100)
	st := tick(t, e, sim, time.Second)
	if st.FastBurn < 1.99 || st.FastBurn > 2.01 {
		t.Fatalf("fast burn = %v, want 2", st.FastBurn)
	}
	if st.SlowBurn < 1.99 || st.SlowBurn > 2.01 {
		t.Fatalf("slow burn = %v, want 2", st.SlowBurn)
	}
	if st.GoodRatio < 0.799 || st.GoodRatio > 0.801 {
		t.Fatalf("good ratio = %v, want 0.8", st.GoodRatio)
	}
	if st.Burn != st.SlowBurn && st.Burn != st.FastBurn {
		t.Fatalf("Burn %v is not min(fast=%v, slow=%v)", st.Burn, st.FastBurn, st.SlowBurn)
	}
}

func TestMultiWindowFiringAndRecovery(t *testing.T) {
	src := &counters{}
	reg := telemetry.NewRegistry()
	e, sim := newTestEngine(t, src, reg)

	// A healthy baseline long enough to cover the slow window.
	for i := 0; i < 30; i++ {
		src.add(10, 10)
		tick(t, e, sim, 5*time.Second)
	}
	// Total outage starts: every event bad → burn 10x. The fast window (30s)
	// fills with bad events quickly; the slow window (2m) takes longer, so
	// the alert must NOT fire on the first bad tick (multi-window gating).
	src.add(0, 50)
	st := tick(t, e, sim, 10*time.Second)
	if st.Firing {
		t.Fatalf("alert fired after one bad tick: %+v (slow window should gate it)", st)
	}
	// Keep burning until both windows agree.
	var fired Status
	for i := 0; i < 12 && !fired.Firing; i++ {
		src.add(0, 50)
		fired = tick(t, e, sim, 10*time.Second)
	}
	if !fired.Firing {
		t.Fatalf("alert never fired under sustained 10x burn: %+v", fired)
	}
	if fired.FastBurn < DefaultAlertBurn || fired.SlowBurn < DefaultAlertBurn {
		t.Fatalf("firing status windows = %+v", fired)
	}
	if fired.Since <= 0 {
		// Since counts from the first firing evaluation; by the next tick it
		// must be positive.
		src.add(0, 50)
		if st := tick(t, e, sim, 10*time.Second); st.Since <= 0 {
			t.Fatalf("Since = %v while continuously firing", st.Since)
		}
	}
	// Gauges mirror the firing state.
	assertGauge(t, reg, "slo_violation", 1)

	// Recovery: all-good events drain the fast window first; the alert must
	// clear even while the slow window still remembers the incident.
	cleared := fired
	for i := 0; i < 8 && cleared.Firing; i++ {
		src.add(50, 50)
		cleared = tick(t, e, sim, 10*time.Second)
	}
	if cleared.Firing {
		t.Fatalf("alert still firing after recovery: %+v", cleared)
	}
	if cleared.Since != 0 {
		t.Fatalf("Since = %v after clearing", cleared.Since)
	}
	assertGauge(t, reg, "slo_violation", 0)
}

func TestEngineQuietWithNoTraffic(t *testing.T) {
	src := &counters{}
	e, sim := newTestEngine(t, src, nil)
	for i := 0; i < 5; i++ {
		if st := tick(t, e, sim, time.Second); st.Firing || st.Burn != 0 || st.GoodRatio != 1 {
			t.Fatalf("idle tick %d = %+v", i, st)
		}
	}
}

func TestEngineStartStop(t *testing.T) {
	var e *Engine
	e.Start() // nil engine: no-ops
	e.Stop()

	src := &counters{}
	e, _ = newTestEngine(t, src, nil)
	e.Stop() // stop before start must not hang
	e2, sim2 := newTestEngine(t, src, nil)
	e2.Start()
	e2.Start() // idempotent
	sim2.Advance(5 * time.Second)
	e2.Stop()
	e2.Stop() // repeated stop must not hang or panic
}

func TestSourcelessObjectivesDropped(t *testing.T) {
	e := NewEngine(EngineConfig{}, Objective{Name: "no-source", Target: 0.9})
	if e.Objectives() != 0 {
		t.Fatalf("engine kept %d objectives, want 0", e.Objectives())
	}
	if sts := e.EvaluateNow(); len(sts) != 0 {
		t.Fatalf("EvaluateNow = %+v", sts)
	}
}

// assertGauge fails unless the first child of family name has value want.
func assertGauge(t *testing.T, reg *telemetry.Registry, name string, want float64) {
	t.Helper()
	for _, fam := range reg.Snapshot() {
		if fam.Name != name {
			continue
		}
		if len(fam.Metrics) == 0 {
			break
		}
		if got := fam.Metrics[0].Value; got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
		return
	}
	t.Fatalf("gauge %s not found in registry", name)
}

package flight

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// stepClock is a manual time source for deterministic durations.
type stepClock struct {
	mu  sync.Mutex
	now time.Time
}

func newStepClock() *stepClock {
	return &stepClock{now: time.Date(2016, 5, 31, 0, 0, 0, 0, time.UTC)}
}

func (c *stepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *stepClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// record runs one request of the given duration through r.
func record(r *Recorder, clk *stepClock, op, key string, d time.Duration, err error) {
	a := r.Begin(op, key, "n1", "us-west", "P")
	clk.Advance(d)
	a.End(err)
}

func TestRecorderRingWrap(t *testing.T) {
	clk := newStepClock()
	r := NewRecorder(Config{Capacity: 4, Now: clk.Now})
	for i := 0; i < 10; i++ {
		record(r, clk, "get", fmt.Sprintf("k%d", i), time.Millisecond, nil)
	}
	recs := r.Recent(0)
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	// Newest first: k9, k8, k7, k6.
	for i, want := range []string{"k9", "k8", "k7", "k6"} {
		if recs[i].Key != want {
			t.Fatalf("recs[%d].Key = %q, want %q", i, recs[i].Key, want)
		}
	}
	if seen, _ := r.Totals(); seen != 10 {
		t.Fatalf("seen = %d, want 10", seen)
	}
	// A bounded request works too.
	if got := r.Recent(2); len(got) != 2 || got[0].Key != "k9" || got[1].Key != "k8" {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestSlowlogThresholdsPerOp(t *testing.T) {
	clk := newStepClock()
	r := NewRecorder(Config{Now: clk.Now}) // defaults: put 800ms, get 400ms
	var hooked []Record
	r.OnSlow(func(rec Record) { hooked = append(hooked, rec) })

	record(r, clk, "put", "fast-put", 500*time.Millisecond, nil) // under put threshold
	record(r, clk, "get", "slow-get", 500*time.Millisecond, nil) // over get threshold
	record(r, clk, "put", "slow-put", time.Second, errors.New("boom"))

	slow := r.Slow(0)
	if len(slow) != 2 {
		t.Fatalf("slowlog has %d records, want 2: %+v", len(slow), slow)
	}
	if slow[0].Key != "slow-put" || slow[1].Key != "slow-get" {
		t.Fatalf("slowlog keys = %q, %q", slow[0].Key, slow[1].Key)
	}
	if !slow[0].Slow || slow[0].Err != "boom" {
		t.Fatalf("slow-put record = %+v", slow[0])
	}
	if _, slowSeen := r.Totals(); slowSeen != 2 {
		t.Fatalf("slowSeen = %d, want 2", slowSeen)
	}
	if len(hooked) != 2 {
		t.Fatalf("OnSlow fired %d times, want 2", len(hooked))
	}

	// Disabling the get threshold stops flagging.
	r.SetSlowThresholds(800*time.Millisecond, -1)
	record(r, clk, "get", "slow-get-2", time.Second, nil)
	if got := r.Slow(0); len(got) != 2 {
		t.Fatalf("disabled get threshold still flagged: %d records", len(got))
	}
}

func TestExpensiveRequests(t *testing.T) {
	clk := newStepClock()
	r := NewRecorder(Config{ExpensiveUSD: 0.01, Now: clk.Now})
	a := r.Begin("put", "pricey", "n1", "us-west", "P")
	a.AddHop(Hop{Kind: HopTier, Name: "t1", CostUSD: 0.004})
	a.AddHop(Hop{Kind: HopRPC, Name: "peer", CostUSD: 0.007})
	a.End(nil)
	record(r, clk, "put", "cheap", time.Millisecond, nil)

	slow := r.Slow(0)
	if len(slow) != 1 || slow[0].Key != "pricey" {
		t.Fatalf("slowlog = %+v, want just pricey", slow)
	}
	if !slow[0].Expensive || slow[0].Slow {
		t.Fatalf("pricey flags = %+v", slow[0])
	}
	if want := 0.011; slow[0].CostUSD < want-1e-9 || slow[0].CostUSD > want+1e-9 {
		t.Fatalf("CostUSD = %v, want %v", slow[0].CostUSD, want)
	}
}

func TestEndIdempotentAndLateHops(t *testing.T) {
	clk := newStepClock()
	r := NewRecorder(Config{Now: clk.Now})
	a := r.Begin("get", "k", "n1", "us-west", "P")
	a.AddHop(Hop{Kind: HopTier, Name: "t1", Duration: time.Millisecond})
	a.End(nil)
	a.End(errors.New("second call must not win"))
	a.AddHop(Hop{Kind: HopRPC, Name: "late"}) // after End: dropped
	if seen, _ := r.Totals(); seen != 1 {
		t.Fatalf("seen = %d, want 1 (End must be idempotent)", seen)
	}
	rec := r.Recent(0)[0]
	if rec.Err != "" || len(rec.Hops) != 1 {
		t.Fatalf("record = %+v", rec)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	a := r.Begin("put", "k", "n", "r", "p")
	if a != nil {
		t.Fatal("nil recorder must return nil active")
	}
	// All of these must be no-ops, not panics.
	a.AddHop(Hop{Kind: HopTier})
	a.AddCost(1)
	a.SetTraceID("x")
	a.End(nil)
	r.SetSlowThresholds(1, 1)
	r.SetExpensiveUSD(1)
	r.OnSlow(func(Record) {})
	if got := r.Recent(0); got != nil {
		t.Fatalf("nil recorder Recent = %v", got)
	}
	if got := r.Slow(0); got != nil {
		t.Fatalf("nil recorder Slow = %v", got)
	}
	if seen, slow := r.Totals(); seen != 0 || slow != 0 {
		t.Fatal("nil recorder totals non-zero")
	}
	if ctx := NewContext(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatal("nil active must not enter the context")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield nil active")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // deliberate nil-ctx check
		t.Fatal("nil context must yield nil active")
	}
}

func TestContextRoundTrip(t *testing.T) {
	r := NewRecorder(Config{})
	a := r.Begin("put", "k", "n", "r", "p")
	ctx := NewContext(context.Background(), a)
	if FromContext(ctx) != a {
		t.Fatal("context did not carry the active record")
	}
}

func TestConcurrentHopsAndRequests(t *testing.T) {
	r := NewRecorder(Config{Capacity: 64})
	var wg sync.WaitGroup
	// Concurrent fan-out hops on one active record.
	a := r.Begin("put", "k", "n", "r", "p")
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				a.AddHop(Hop{Kind: HopRPC, Name: fmt.Sprintf("peer%d", i), CostUSD: 0.001})
			}
		}(i)
	}
	wg.Wait()
	a.End(nil)
	rec := r.Recent(1)[0]
	if len(rec.Hops) != 800 {
		t.Fatalf("hops = %d, want 800", len(rec.Hops))
	}
	if rec.CostUSD < 0.8-1e-9 || rec.CostUSD > 0.8+1e-9 {
		t.Fatalf("cost = %v, want 0.8", rec.CostUSD)
	}
	// Concurrent full requests (exercises ring filing under -race).
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				b := r.Begin("get", fmt.Sprintf("k%d-%d", g, j), "n", "r", "p")
				b.AddHop(Hop{Kind: HopTier, Name: "t1"})
				b.End(nil)
			}
		}(g)
	}
	wg.Wait()
	if seen, _ := r.Totals(); seen != 401 {
		t.Fatalf("seen = %d, want 401", seen)
	}
}

func TestDumpAndHandler(t *testing.T) {
	clk := newStepClock()
	r := NewRecorder(Config{Now: clk.Now})
	record(r, clk, "put", "fast", time.Millisecond, nil)
	record(r, clk, "put", "slow", time.Second, nil)

	d := Dump(r, true, 0)
	if d.TotalSeen != 2 || d.SlowSeen != 1 || len(d.Records) != 1 || d.Records[0].Key != "slow" {
		t.Fatalf("Dump(slow) = %+v", d)
	}
	if d = Dump(r, false, 0); len(d.Records) != 2 {
		t.Fatalf("Dump(all) returned %d records", len(d.Records))
	}

	// JSON endpoint.
	h := Handler(r)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/requests?slow=1", nil))
	if rw.Code != 200 {
		t.Fatalf("status = %d", rw.Code)
	}
	var resp DumpResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Records) != 1 || resp.Records[0].Key != "slow" {
		t.Fatalf("handler slow dump = %+v", resp)
	}

	// Text rendering.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest("GET", "/debug/requests?format=text", nil))
	if !strings.Contains(rw.Body.String(), "SLOW") || !strings.Contains(rw.Body.String(), "fast") {
		t.Fatalf("text dump missing content:\n%s", rw.Body.String())
	}

	if txt := RenderRecords(d.Records); !strings.Contains(txt, "fast") {
		t.Fatalf("RenderRecords missing record:\n%s", txt)
	}
	withHops := []Record{{Op: "put", Key: "k", Total: time.Second, Hops: []Hop{
		{Kind: HopTier, Name: "t1", Duration: time.Millisecond, CostUSD: 0.001},
		{Kind: HopRPC, Name: "p1", Duration: 2 * time.Millisecond},
	}}}
	if txt := RenderHopSummary(withHops); !strings.Contains(txt, HopTier) || !strings.Contains(txt, HopRPC) {
		t.Fatalf("RenderHopSummary missing kinds:\n%s", txt)
	}
}

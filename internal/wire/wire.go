// Package wire is a hand-rolled, zero-alloc, length-prefixed binary codec
// for the hot-path RPC messages (put/get/batch/repair/ec). It replaces gob
// on the data path while leaving control-plane messages on gob.
//
// Frame layout (DESIGN.md §14):
//
//	byte 0: magic0 = 0xBD
//	byte 1: magic1 = 0x57 ('W')
//	byte 2: version = 0x01
//	byte 3: method tag (one byte per message type)
//	bytes 4..: message body (varint lengths, fixed field order)
//
// The first byte 0xBD is deliberately chosen so a frame can never be
// mistaken for a gob stream: gob's first byte is an unsigned length
// (0x00..0x7F) or a length-prefix marker (0xF8..0xFF), never 0x80..0xF7.
// transport.Decode uses Is() to route each payload to the right decoder,
// which is what keeps mixed-version clusters working during a rolling
// upgrade — an old gob-only peer's frames still decode, and a new peer's
// binary frames are self-describing.
//
// Body encoding primitives:
//   - uvarint: LEB128, as in encoding/binary.
//   - svarint: zigzag-mapped uvarint for signed ints.
//   - bytes/string: uvarint length then raw bytes. Decoded []byte fields
//     alias the frame (zero-copy); decoded strings reuse the existing
//     string when the bytes match, so steady-state decode into a reused
//     struct performs zero allocations.
//   - time.Time: one flag byte (0 = zero time) then svarint UnixNano.
//   - bool: one byte, strictly 0 or 1.
package wire

import (
	"errors"
	"fmt"
	"time"
)

const (
	magic0  = 0xBD
	magic1  = 0x57 // 'W'
	Version = 0x01

	// HeaderLen is the fixed frame header size: magic (2) + version + tag.
	HeaderLen = 4
)

var (
	// ErrTruncated is returned when a frame ends before its declared
	// contents; decoding never panics on short input.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrCorrupt is returned for structurally invalid bodies (overlong
	// varints, non-canonical bools, counts exceeding the frame).
	ErrCorrupt = errors.New("wire: corrupt frame")
	// ErrNotWire is returned by Open when the payload is not a wire frame
	// (callers then fall back to gob).
	ErrNotWire = errors.New("wire: not a wire frame")
	// ErrVersion is returned for frames with an unknown codec version.
	ErrVersion = errors.New("wire: unsupported frame version")
	// ErrTag is returned when a frame's method tag does not match the
	// message type it is being decoded into.
	ErrTag = errors.New("wire: frame tag does not match message type")
	// ErrTrailing is returned when a frame has bytes left over after the
	// message body has been fully decoded.
	ErrTrailing = errors.New("wire: trailing bytes after message body")
)

// Marshaler is implemented (with value receivers) by messages that have a
// hand-rolled binary encoding.
type Marshaler interface {
	// WireTag returns the one-byte method tag identifying the message type.
	WireTag() byte
	// WireSize returns the exact encoded body size in bytes, so Marshal
	// can allocate once (or AppendFrame can ensure capacity once).
	WireSize() int
	// AppendWire appends the message body to dst and returns it.
	AppendWire(dst []byte) []byte
}

// Unmarshaler is implemented (with pointer receivers) by messages that can
// decode themselves from a frame body. Implementations construct a Reader
// locally (r := NewReader(body)) and finish with r.Close() — keeping the
// Reader a concrete local lets escape analysis stack-allocate it, which is
// what makes decode zero-alloc. Taking a *Reader through the interface
// would force a heap allocation per decode.
type Unmarshaler interface {
	Marshaler
	UnmarshalWire(body []byte) error
}

// Is reports whether data begins with a wire frame header.
func Is(data []byte) bool {
	return len(data) >= HeaderLen && data[0] == magic0 && data[1] == magic1
}

// AppendFrame appends a complete frame (header + body) for m to dst.
func AppendFrame(dst []byte, m Marshaler) []byte {
	need := HeaderLen + m.WireSize()
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, magic0, magic1, Version, m.WireTag())
	return m.AppendWire(dst)
}

// Marshal encodes m as a single exact-size frame.
func Marshal(m Marshaler) []byte {
	out := make([]byte, 0, HeaderLen+m.WireSize())
	out = append(out, magic0, magic1, Version, m.WireTag())
	return m.AppendWire(out)
}

// Open validates the frame header and returns the method tag and a Reader
// over the body. It returns ErrNotWire for non-wire payloads.
func Open(data []byte) (byte, Reader, error) {
	if !Is(data) {
		return 0, Reader{}, ErrNotWire
	}
	if data[2] != Version {
		return 0, Reader{}, fmt.Errorf("%w: %d", ErrVersion, data[2])
	}
	return data[3], Reader{buf: data[HeaderLen:]}, nil
}

// Unmarshal decodes a complete frame into m, checking the method tag.
// Trailing-byte rejection is each message's responsibility via
// Reader.Close in its UnmarshalWire.
func Unmarshal(data []byte, m Unmarshaler) error {
	if !Is(data) {
		return ErrNotWire
	}
	if data[2] != Version {
		return fmt.Errorf("%w: %d", ErrVersion, data[2])
	}
	if tag := data[3]; tag != m.WireTag() {
		return fmt.Errorf("%w: got 0x%02x want 0x%02x", ErrTag, tag, m.WireTag())
	}
	return m.UnmarshalWire(data[HeaderLen:])
}

// ---------------------------------------------------------------------------
// Size helpers (exact encoded sizes, used by WireSize implementations).

// SizeUvarint returns the encoded size of v as a LEB128 uvarint.
func SizeUvarint(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// SizeVarint returns the encoded size of v as a zigzag svarint.
func SizeVarint(v int64) int {
	return SizeUvarint(uint64(v)<<1 ^ uint64(v>>63))
}

// SizeBytes returns the encoded size of a length-prefixed byte slice.
func SizeBytes(b []byte) int { return SizeUvarint(uint64(len(b))) + len(b) }

// SizeString returns the encoded size of a length-prefixed string.
func SizeString(s string) int { return SizeUvarint(uint64(len(s))) + len(s) }

// SizeTime returns the encoded size of a time value.
func SizeTime(t time.Time) int {
	if t.IsZero() {
		return 1
	}
	return 1 + SizeVarint(t.UnixNano())
}

// SizeBool returns the encoded size of a bool (always 1).
func SizeBool(bool) int { return 1 }

// ---------------------------------------------------------------------------
// Append helpers.

// AppendUvarint appends v as a LEB128 uvarint.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// AppendVarint appends v as a zigzag svarint.
func AppendVarint(dst []byte, v int64) []byte {
	return AppendUvarint(dst, uint64(v)<<1^uint64(v>>63))
}

// AppendBytes appends a uvarint length followed by the raw bytes.
func AppendBytes(dst, b []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendString appends a uvarint length followed by the string bytes.
func AppendString(dst []byte, s string) []byte {
	dst = AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBool appends 1 for true, 0 for false.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendTime appends a zero flag byte, or 1 followed by svarint UnixNano.
// Monotonic clock readings and zone information are not preserved; all
// consumers compare instants (Equal/After), so this is lossless for them.
func AppendTime(dst []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return AppendVarint(dst, t.UnixNano())
}

// ---------------------------------------------------------------------------
// Reader: a sticky-error cursor over a frame body.

// Reader decodes primitives from a frame body. The first malformed read
// latches an error; subsequent reads return zero values, so decoders can
// run straight-line and check the error once at the end (Close also
// rejects trailing bytes).
type Reader struct {
	buf []byte
	err error
}

// NewReader returns a Reader over a raw body (used by tests).
func NewReader(b []byte) Reader { return Reader{buf: b} }

// Err returns the latched error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) }

// Close returns the latched error, or ErrTrailing if body bytes remain.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf))
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint reads a LEB128 uvarint. The encoding is strict-canonical:
// varints longer than 10 bytes, a final byte that overflows 64 bits, or a
// non-minimal encoding (a zero continuation byte, e.g. 0xFC 0x00 for 0x7C)
// are rejected as corrupt. Strictness is what makes accepted frames
// re-encode byte-exact (the fuzz invariant).
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	for i := 0; i < len(r.buf); i++ {
		b := r.buf[i]
		if b < 0x80 {
			if i > 0 && b == 0 {
				r.fail(ErrCorrupt)
				return 0
			}
			if i == 9 && b > 1 {
				r.fail(ErrCorrupt)
				return 0
			}
			r.buf = r.buf[i+1:]
			return v | uint64(b)<<(7*i)
		}
		if i == 9 {
			r.fail(ErrCorrupt)
			return 0
		}
		v |= uint64(b&0x7F) << (7 * i)
	}
	r.fail(ErrTruncated)
	return 0
}

// Varint reads a zigzag svarint.
func (r *Reader) Varint() int64 {
	u := r.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Bytes reads a length-prefixed byte slice. The returned slice aliases the
// frame buffer — zero-copy. Callers that retain the data past the frame's
// lifetime must copy it (all current consumers hand payloads to tier
// stores, which copy on Put/Get).
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[:n:n]
	r.buf = r.buf[n:]
	return b
}

// String reads a length-prefixed string (always allocates; prefer
// StringInto when decoding into a reused struct).
func (r *Reader) String() string {
	return string(r.Bytes())
}

// StringInto reads a length-prefixed string into *s, reusing the existing
// string when the bytes already match (the `if *s != string(b)` comparison
// does not allocate), so repeated decodes into the same struct are
// allocation-free.
func (r *Reader) StringInto(s *string) {
	b := r.Bytes()
	if r.err != nil {
		return
	}
	if *s != string(b) {
		*s = string(b)
	}
}

// Bool reads a strictly-canonical bool byte (0 or 1).
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.buf) == 0 {
		r.fail(ErrTruncated)
		return false
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	switch b {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(ErrCorrupt)
		return false
	}
}

// Time reads a time value (zero flag byte, then svarint UnixNano).
func (r *Reader) Time() time.Time {
	if !r.Bool() {
		return time.Time{}
	}
	ns := r.Varint()
	if r.err != nil {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Count reads a uvarint element count for a slice, rejecting counts that
// could not possibly fit in the remaining bytes (each element costs at
// least one byte), so corrupt frames can't trigger huge allocations.
func (r *Reader) Count() int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.buf)) {
		r.fail(ErrCorrupt)
		return 0
	}
	return int(n)
}

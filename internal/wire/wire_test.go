package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 14, 1 << 21, 1 << 35, math.MaxUint64}
	for _, v := range cases {
		b := AppendUvarint(nil, v)
		if len(b) != SizeUvarint(v) {
			t.Fatalf("size mismatch for %d: got %d want %d", v, len(b), SizeUvarint(v))
		}
		r := NewReader(b)
		got := r.Uvarint()
		if err := r.Close(); err != nil {
			t.Fatalf("close after %d: %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 63, -64, 64, -65, math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		b := AppendVarint(nil, v)
		if len(b) != SizeVarint(v) {
			t.Fatalf("size mismatch for %d: got %d want %d", v, len(b), SizeVarint(v))
		}
		r := NewReader(b)
		got := r.Varint()
		if err := r.Close(); err != nil {
			t.Fatalf("close after %d: %v", v, err)
		}
		if got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}

func TestUvarintOverflowRejected(t *testing.T) {
	// 11-byte varint: always corrupt.
	long := bytes.Repeat([]byte{0x80}, 10)
	long = append(long, 0x01)
	r := NewReader(long)
	r.Uvarint()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("11-byte varint: got %v want ErrCorrupt", r.Err())
	}
	// 10-byte varint whose last byte overflows 64 bits.
	over := bytes.Repeat([]byte{0xFF}, 9)
	over = append(over, 0x02)
	r = NewReader(over)
	r.Uvarint()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("overflowing varint: got %v want ErrCorrupt", r.Err())
	}
	// Non-minimal encoding (0xFC 0x00 encodes 0x7C in two bytes).
	r = NewReader([]byte{0xFC, 0x00})
	r.Uvarint()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("non-minimal varint: got %v want ErrCorrupt", r.Err())
	}
}

func TestUvarintTruncated(t *testing.T) {
	b := AppendUvarint(nil, 1<<30)
	for i := 0; i < len(b); i++ {
		r := NewReader(b[:i])
		r.Uvarint()
		if !errors.Is(r.Err(), ErrTruncated) {
			t.Fatalf("prefix %d: got %v want ErrTruncated", i, r.Err())
		}
	}
}

func TestBytesZeroCopy(t *testing.T) {
	payload := []byte("hello world")
	frame := AppendBytes(nil, payload)
	r := NewReader(frame)
	got := r.Bytes()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
	// The decoded slice must alias the frame, not a copy.
	if &got[0] != &frame[len(frame)-len(payload)] {
		t.Fatal("Bytes() copied instead of aliasing the frame")
	}
}

func TestBytesTruncated(t *testing.T) {
	frame := AppendBytes(nil, []byte("hello"))
	r := NewReader(frame[:3])
	r.Bytes()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("got %v want ErrTruncated", r.Err())
	}
}

func TestStringInto(t *testing.T) {
	frame := AppendString(nil, "wiera")
	s := "wiera" // already matching: must not be replaced
	r := NewReader(frame)
	r.StringInto(&s)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if s != "wiera" {
		t.Fatalf("got %q", s)
	}
	s = "other"
	r = NewReader(frame)
	r.StringInto(&s)
	if s != "wiera" {
		t.Fatalf("got %q", s)
	}
}

func TestBoolCanonical(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("bool byte 2: got %v want ErrCorrupt", r.Err())
	}
}

func TestTimeRoundTrip(t *testing.T) {
	for _, tm := range []time.Time{{}, time.Unix(0, 0), time.Unix(1700000000, 123456789), time.Unix(-5, 7)} {
		b := AppendTime(nil, tm)
		if len(b) != SizeTime(tm) {
			t.Fatalf("size mismatch for %v", tm)
		}
		r := NewReader(b)
		got := r.Time()
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if tm.IsZero() {
			if !got.IsZero() {
				t.Fatalf("zero time decoded as %v", got)
			}
			continue
		}
		if !got.Equal(tm) {
			t.Fatalf("round trip %v -> %v", tm, got)
		}
	}
}

func TestCountGuard(t *testing.T) {
	// A claimed count of 1000 with only 2 bytes left must be rejected
	// before any allocation happens.
	frame := AppendUvarint(nil, 1000)
	frame = append(frame, 0, 0)
	r := NewReader(frame)
	r.Count()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("got %v want ErrCorrupt", r.Err())
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	r.Uvarint() // latches ErrTruncated
	if r.Bool() || r.Varint() != 0 || r.Bytes() != nil {
		t.Fatal("reads after error must return zero values")
	}
	if !errors.Is(r.Close(), ErrTruncated) {
		t.Fatalf("got %v", r.Close())
	}
}

type testMsg struct {
	Key  string
	Data []byte
}

func (m testMsg) WireTag() byte { return 0x7F }
func (m testMsg) WireSize() int { return SizeString(m.Key) + SizeBytes(m.Data) }
func (m testMsg) AppendWire(dst []byte) []byte {
	dst = AppendString(dst, m.Key)
	return AppendBytes(dst, m.Data)
}
func (m *testMsg) UnmarshalWire(body []byte) error {
	r := NewReader(body)
	r.StringInto(&m.Key)
	m.Data = r.Bytes()
	return r.Close()
}

func TestFrameRoundTrip(t *testing.T) {
	in := testMsg{Key: "k1", Data: []byte("payload")}
	frame := Marshal(in)
	if !Is(frame) {
		t.Fatal("Marshal output not recognized by Is()")
	}
	if len(frame) != HeaderLen+in.WireSize() {
		t.Fatalf("frame length %d, want %d", len(frame), HeaderLen+in.WireSize())
	}
	var out testMsg
	if err := Unmarshal(frame, &out); err != nil {
		t.Fatal(err)
	}
	if out.Key != in.Key || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	// AppendFrame into a reused buffer produces identical bytes.
	buf := make([]byte, 0, 64)
	if got := AppendFrame(buf, in); !bytes.Equal(got, frame) {
		t.Fatal("AppendFrame differs from Marshal")
	}
}

func TestFrameErrors(t *testing.T) {
	in := testMsg{Key: "k", Data: []byte("d")}
	frame := Marshal(in)

	var out testMsg
	if err := Unmarshal([]byte{1, 2, 3}, &out); !errors.Is(err, ErrNotWire) {
		t.Fatalf("non-wire: got %v", err)
	}
	bad := append([]byte{}, frame...)
	bad[2] = 0x42
	if err := Unmarshal(bad, &out); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: got %v", err)
	}
	bad = append([]byte{}, frame...)
	bad[3] = 0x01
	if err := Unmarshal(bad, &out); !errors.Is(err, ErrTag) {
		t.Fatalf("bad tag: got %v", err)
	}
	for i := HeaderLen; i < len(frame); i++ {
		if err := Unmarshal(frame[:i], &out); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
	trailing := append(append([]byte{}, frame...), 0xEE)
	if err := Unmarshal(trailing, &out); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing: got %v", err)
	}
}

func TestMarshalZeroAlloc(t *testing.T) {
	in := testMsg{Key: "bench-key", Data: bytes.Repeat([]byte{0xAB}, 512)}
	buf := make([]byte, 0, HeaderLen+in.WireSize())
	var out testMsg
	// Hoist the interface conversions: at real call sites the message is
	// already held as `any` by transport.Encode/Decode.
	var m Marshaler = in
	var um Unmarshaler = &out
	frame := AppendFrame(buf, m)
	if err := Unmarshal(frame, um); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		frame := AppendFrame(buf[:0], m)
		if err := Unmarshal(frame, um); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encode+decode allocated %.1f times per op, want 0", allocs)
	}
}

// Package tier implements the storage tiers a Tiera instance composes
// (paper Sec 2.1): a volatile memory tier (Memcached/ElastiCache class),
// block tiers (EBS SSD gp2 and EBS HDD magnetic), object storage (S3), and
// archival classes (S3-IA, Glacier). Each tier is an in-memory byte store
// wrapped in a latency and throughput model calibrated so the Figure 9
// ordering holds: memory < EBS SSD < EBS HDD < S3 < S3-IA, and Glacier
// retrieval takes vastly longer. Tiers also report capacity/fill level (the
// "tier2.filled == 50%" events) and carry a cost class for the accountant.
package tier

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/cost"
	"repro/internal/flight"
	"repro/internal/telemetry"
)

// Common tier errors.
var (
	// ErrNotFound is returned by Get/Delete for missing keys.
	ErrNotFound = errors.New("tier: key not found")
	// ErrCapacity is returned by Put when the tier is full and eviction is
	// disabled.
	ErrCapacity = errors.New("tier: capacity exceeded")
)

// Tier is one storage service inside a Tiera instance.
type Tier interface {
	// Name is the instance-local tier name from the policy spec (tier1...).
	Name() string
	// Class is the priced storage class backing this tier.
	Class() cost.TierClass
	// Volatile reports whether data is lost on restart (memory tiers).
	Volatile() bool
	// Put stores data under key, blocking for the simulated write latency.
	// The context carries the trace span of the enclosing operation.
	Put(ctx context.Context, key string, data []byte) error
	// Get retrieves the data for key, blocking for the simulated read
	// latency.
	Get(ctx context.Context, key string) ([]byte, error)
	// Delete removes key. Deleting a missing key returns ErrNotFound.
	Delete(ctx context.Context, key string) error
	// Has reports whether key is present without a latency charge.
	Has(key string) bool
	// Keys returns all stored keys, sorted.
	Keys() []string
	// Used returns bytes currently stored.
	Used() int64
	// Capacity returns the configured capacity in bytes (0 = unlimited).
	Capacity() int64
	// Grow increases capacity by delta bytes (the Tiera "grow" response).
	Grow(delta int64)
	// Stats returns cumulative operation counters.
	Stats() Stats
}

// Stats counts tier operations.
type Stats struct {
	Puts, Gets, Deletes int64
	BytesIn, BytesOut   int64
	Evictions           int64
}

// LatencyProfile models a tier's service time: a fixed per-operation base
// plus a per-byte throughput term, with an optional IOPS cap that enforces
// minimum spacing between operation admissions (how EBS/Azure throttle
// random I/O).
type LatencyProfile struct {
	ReadBase  time.Duration // first-byte latency for reads
	WriteBase time.Duration // first-byte latency for writes
	ReadBPS   float64       // read throughput, bytes/sec (0 = infinite)
	WriteBPS  float64       // write throughput, bytes/sec (0 = infinite)
	IOPSCap   int           // max ops/sec admitted (0 = uncapped)
}

// readTime returns the simulated duration of a read of size bytes.
func (p LatencyProfile) readTime(size int64) time.Duration {
	d := p.ReadBase
	if p.ReadBPS > 0 && size > 0 {
		d += time.Duration(float64(size) / p.ReadBPS * float64(time.Second))
	}
	return d
}

func (p LatencyProfile) writeTime(size int64) time.Duration {
	d := p.WriteBase
	if p.WriteBPS > 0 && size > 0 {
		d += time.Duration(float64(size) / p.WriteBPS * float64(time.Second))
	}
	return d
}

// Profiles calibrated to Figure 9 (4 KB operations in US-East) and the
// paper's narrative: EBS under OS buffer cache is <1 ms; uncached SSD is a
// couple of ms; HDD near 10 ms; S3 tens of ms; S3-IA slightly worse than
// S3; Glacier retrievals take hours (scaled here to a large constant that
// still dominates every comparison).
var (
	// MemoryProfile: Memcached-class in-memory store.
	MemoryProfile = LatencyProfile{
		ReadBase: 200 * time.Microsecond, WriteBase: 250 * time.Microsecond,
		ReadBPS: 1e9, WriteBPS: 1e9,
	}
	// EBSSSDProfile: gp2 without the OS buffer cache.
	EBSSSDProfile = LatencyProfile{
		ReadBase: 1 * time.Millisecond, WriteBase: 1500 * time.Microsecond,
		ReadBPS: 160e6, WriteBPS: 160e6,
	}
	// EBSSSDCachedProfile: gp2 behind a warm OS buffer cache (<1 ms).
	EBSSSDCachedProfile = LatencyProfile{
		ReadBase: 300 * time.Microsecond, WriteBase: 400 * time.Microsecond,
		ReadBPS: 1e9, WriteBPS: 1e9,
	}
	// EBSHDDProfile: magnetic volumes, seek-bound.
	EBSHDDProfile = LatencyProfile{
		ReadBase: 8 * time.Millisecond, WriteBase: 10 * time.Millisecond,
		ReadBPS: 90e6, WriteBPS: 90e6,
	}
	// S3Profile: object storage REST path.
	S3Profile = LatencyProfile{
		ReadBase: 25 * time.Millisecond, WriteBase: 50 * time.Millisecond,
		ReadBPS: 60e6, WriteBPS: 40e6,
	}
	// S3IAProfile: infrequent-access class, slightly slower than S3.
	S3IAProfile = LatencyProfile{
		ReadBase: 30 * time.Millisecond, WriteBase: 55 * time.Millisecond,
		ReadBPS: 50e6, WriteBPS: 35e6,
	}
	// GlacierProfile: archival; retrieval latency dominates everything.
	GlacierProfile = LatencyProfile{
		ReadBase: 4 * time.Hour, WriteBase: 100 * time.Millisecond,
		ReadBPS: 30e6, WriteBPS: 30e6,
	}
)

// Config describes one tier to construct.
type Config struct {
	Name     string
	Class    cost.TierClass
	Capacity int64 // bytes; 0 = unlimited
	Profile  LatencyProfile
	Volatile bool
	// EvictLRU makes Put evict least-recently-used entries instead of
	// failing when full (cache semantics for memory tiers).
	EvictLRU bool
	// Accountant, when set, is charged for requests against Class.
	Accountant *cost.Accountant
}

// New constructs a tier from cfg over clk.
func New(cfg Config, clk clock.Clock) (*Store, error) {
	if cfg.Name == "" {
		return nil, errors.New("tier: name required")
	}
	if _, err := cost.PriceFor(cfg.Class); err != nil {
		return nil, err
	}
	if clk == nil {
		return nil, errors.New("tier: clock required")
	}
	return &Store{cfg: cfg, clk: clk, data: make(map[string]entry)}, nil
}

// Standard constructs a tier of a well-known class with its calibrated
// profile: "memory", "ebs-ssd", "ebs-ssd-cached", "ebs-hdd", "s3", "s3-ia",
// or "glacier".
func Standard(name, kind string, capacity int64, clk clock.Clock) (*Store, error) {
	cfg := Config{Name: name, Capacity: capacity}
	switch kind {
	case "memory":
		cfg.Class, cfg.Profile, cfg.Volatile, cfg.EvictLRU = cost.ClassMemory, MemoryProfile, true, true
	case "ebs-ssd":
		cfg.Class, cfg.Profile = cost.ClassEBSSSD, EBSSSDProfile
	case "ebs-ssd-cached":
		cfg.Class, cfg.Profile = cost.ClassEBSSSD, EBSSSDCachedProfile
	case "ebs-hdd":
		cfg.Class, cfg.Profile = cost.ClassEBSHDD, EBSHDDProfile
	case "s3":
		cfg.Class, cfg.Profile = cost.ClassS3, S3Profile
	case "s3-ia":
		cfg.Class, cfg.Profile = cost.ClassS3IA, S3IAProfile
	case "glacier":
		cfg.Class, cfg.Profile = cost.ClassGlacier, GlacierProfile
	default:
		return nil, fmt.Errorf("tier: unknown standard kind %q", kind)
	}
	return New(cfg, clk)
}

type entry struct {
	data     []byte
	lastUsed time.Time
}

// Store is the common tier implementation. Safe for concurrent use.
type Store struct {
	cfg Config
	clk clock.Clock

	mu       sync.Mutex
	data     map[string]entry
	used     int64
	grown    int64     // capacity added via Grow
	nextFree time.Time // IOPS admission: earliest next op start
	stats    Stats

	// Telemetry children, cached at SetTelemetry time so the hot path pays
	// no label lookups. All nil (no-op) until installed.
	putSeconds *telemetry.Histogram
	getSeconds *telemetry.Histogram
	putOps     *telemetry.Counter
	getOps     *telemetry.Counter
}

// SetTelemetry installs per-tier metrics into reg, labeled by operation,
// tier name, storage class, and region. Children are resolved once here;
// Put/Get then record with plain atomic adds. A nil registry uninstalls.
func (s *Store) SetTelemetry(reg *telemetry.Registry, region string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg == nil {
		s.putSeconds, s.getSeconds, s.putOps, s.getOps = nil, nil, nil, nil
		return
	}
	hist := reg.Histogram("tier_op_seconds",
		"Simulated tier service time per operation.", "op", "tier", "class", "region")
	ops := reg.Counter("tier_ops_total",
		"Tier operations served.", "op", "tier", "class", "region")
	class := string(s.cfg.Class)
	s.putSeconds = hist.With("put", s.cfg.Name, class, region)
	s.getSeconds = hist.With("get", s.cfg.Name, class, region)
	s.putOps = ops.With("put", s.cfg.Name, class, region)
	s.getOps = ops.With("get", s.cfg.Name, class, region)
}

// Name implements Tier.
func (s *Store) Name() string { return s.cfg.Name }

// Class implements Tier.
func (s *Store) Class() cost.TierClass { return s.cfg.Class }

// Volatile implements Tier.
func (s *Store) Volatile() bool { return s.cfg.Volatile }

// Capacity implements Tier.
func (s *Store) Capacity() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Capacity == 0 {
		return 0
	}
	return s.cfg.Capacity + s.grown
}

// Grow implements Tier.
func (s *Store) Grow(delta int64) {
	s.mu.Lock()
	s.grown += delta
	s.mu.Unlock()
}

// Used implements Tier.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// FillFraction returns Used/Capacity, or 0 for unlimited tiers. It backs
// the "tier.filled == 50%" policy events.
func (s *Store) FillFraction() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	capacity := s.cfg.Capacity + s.grown
	if s.cfg.Capacity == 0 || capacity <= 0 {
		return 0
	}
	return float64(s.used) / float64(capacity)
}

// admit enforces the IOPS cap: it reserves the next admission slot and
// returns how long the caller must wait before starting service.
func (s *Store) admit(now time.Time) time.Duration {
	if s.cfg.Profile.IOPSCap <= 0 {
		return 0
	}
	interval := time.Duration(float64(time.Second) / float64(s.cfg.Profile.IOPSCap))
	if s.nextFree.Before(now) {
		s.nextFree = now
	}
	wait := s.nextFree.Sub(now)
	s.nextFree = s.nextFree.Add(interval)
	return wait
}

// Put implements Tier.
func (s *Store) Put(ctx context.Context, key string, data []byte) error {
	_, span := telemetry.StartSpan(ctx, "tier.put")
	span.SetAttr("tier", s.cfg.Name)
	span.SetAttr("class", string(s.cfg.Class))
	defer span.End()

	size := int64(len(data))
	s.mu.Lock()
	wait := s.admit(s.clk.Now())
	capacity := s.cfg.Capacity + s.grown
	if s.cfg.Capacity != 0 {
		old := int64(0)
		if e, ok := s.data[key]; ok {
			old = int64(len(e.data))
		}
		needed := s.used - old + size
		if needed > capacity {
			if !s.cfg.EvictLRU {
				s.mu.Unlock()
				return fmt.Errorf("%w: %s needs %d bytes over capacity %d", ErrCapacity, s.cfg.Name, needed-capacity, capacity)
			}
			if !s.evictLocked(needed-capacity, key) {
				s.mu.Unlock()
				return fmt.Errorf("%w: %s cannot evict enough for %d bytes", ErrCapacity, s.cfg.Name, size)
			}
		}
	}
	if e, ok := s.data[key]; ok {
		s.used -= int64(len(e.data))
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.data[key] = entry{data: cp, lastUsed: s.clk.Now()}
	s.used += size
	s.stats.Puts++
	s.stats.BytesIn += size
	hist, ops := s.putSeconds, s.putOps
	s.mu.Unlock()

	if s.cfg.Accountant != nil {
		_ = s.cfg.Accountant.ChargePut(s.cfg.Class, 1)
	}
	service := wait + s.cfg.Profile.writeTime(size)
	s.clk.Sleep(service)
	hist.Record(service)
	ops.Inc()
	flight.FromContext(ctx).AddHop(flight.Hop{
		Kind: flight.HopTier, Name: s.cfg.Name, Class: string(s.cfg.Class),
		Wait: wait, Duration: service, Bytes: size,
		CostUSD: cost.PutRequestCost(s.cfg.Class),
	})
	return nil
}

// evictLocked frees at least need bytes by LRU order, never evicting
// exclude. Returns false if it cannot free enough.
func (s *Store) evictLocked(need int64, exclude string) bool {
	type cand struct {
		key  string
		size int64
		used time.Time
	}
	cands := make([]cand, 0, len(s.data))
	for k, e := range s.data {
		if k == exclude {
			continue
		}
		cands = append(cands, cand{k, int64(len(e.data)), e.lastUsed})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].used.Before(cands[j].used) })
	freed := int64(0)
	for _, c := range cands {
		if freed >= need {
			break
		}
		delete(s.data, c.key)
		s.used -= c.size
		freed += c.size
		s.stats.Evictions++
	}
	return freed >= need
}

// Get implements Tier.
func (s *Store) Get(ctx context.Context, key string) ([]byte, error) {
	_, span := telemetry.StartSpan(ctx, "tier.get")
	span.SetAttr("tier", s.cfg.Name)
	span.SetAttr("class", string(s.cfg.Class))
	defer span.End()

	s.mu.Lock()
	wait := s.admit(s.clk.Now())
	e, ok := s.data[key]
	if !ok {
		s.mu.Unlock()
		err := fmt.Errorf("%w: %q in tier %s", ErrNotFound, key, s.cfg.Name)
		span.SetError(err)
		return nil, err
	}
	e.lastUsed = s.clk.Now()
	s.data[key] = e
	cp := make([]byte, len(e.data))
	copy(cp, e.data)
	s.stats.Gets++
	s.stats.BytesOut += int64(len(cp))
	hist, ops := s.getSeconds, s.getOps
	s.mu.Unlock()

	if s.cfg.Accountant != nil {
		_ = s.cfg.Accountant.ChargeGet(s.cfg.Class, 1)
	}
	service := wait + s.cfg.Profile.readTime(int64(len(cp)))
	s.clk.Sleep(service)
	hist.Record(service)
	ops.Inc()
	flight.FromContext(ctx).AddHop(flight.Hop{
		Kind: flight.HopTier, Name: s.cfg.Name, Class: string(s.cfg.Class),
		Wait: wait, Duration: service, Bytes: int64(len(cp)),
		CostUSD: cost.GetRequestCost(s.cfg.Class),
	})
	return cp, nil
}

// Delete implements Tier.
func (s *Store) Delete(_ context.Context, key string) error {
	s.mu.Lock()
	e, ok := s.data[key]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q in tier %s", ErrNotFound, key, s.cfg.Name)
	}
	delete(s.data, key)
	s.used -= int64(len(e.data))
	s.stats.Deletes++
	s.mu.Unlock()
	return nil
}

// Has implements Tier.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.data[key]
	return ok
}

// Keys implements Tier.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats implements Tier.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Crash simulates a process restart: volatile tiers lose all contents;
// durable tiers are unaffected.
func (s *Store) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.cfg.Volatile {
		return
	}
	s.data = make(map[string]entry)
	s.used = 0
}

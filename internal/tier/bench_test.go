package tier

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/clock"
)

// zeroLatencyTier isolates data-structure cost from the latency model.
func zeroLatencyTier(b *testing.B) *Store {
	b.Helper()
	s, err := New(Config{Name: "bench", Class: "S3"}, clock.NewScaled(1e6))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkTierPut4K(b *testing.B) {
	s := zeroLatencyTier(b)
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Put(context.Background(), fmt.Sprintf("k%d", i%1024), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTierGet4K(b *testing.B) {
	s := zeroLatencyTier(b)
	payload := make([]byte, 4096)
	for i := 0; i < 1024; i++ {
		s.Put(context.Background(), fmt.Sprintf("k%d", i), payload)
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(context.Background(), fmt.Sprintf("k%d", i%1024)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTierLRUEvictionChurn(b *testing.B) {
	s, err := New(Config{
		Name: "cache", Class: "Memory", Capacity: 64 * 1024, EvictLRU: true,
	}, clock.NewScaled(1e6))
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Put(context.Background(), fmt.Sprintf("k%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

package tier

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/cost"
)

// fastClock returns a heavily compressed real clock so latency-modelled ops
// complete quickly in tests.
func fastClock() clock.Clock { return clock.NewScaled(10000) }

func newMem(t *testing.T, capacity int64) *Store {
	t.Helper()
	s, err := Standard("tier1", "memory", capacity, fastClock())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newMem(t, 0)
	if err := s.Put(context.Background(), "k", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(context.Background(), "k")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestGetMissing(t *testing.T) {
	s := newMem(t, 0)
	if _, err := s.Get(context.Background(), "absent"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := newMem(t, 0)
	s.Put(context.Background(), "k", []byte("v"))
	if err := s.Delete(context.Background(), "k"); err != nil {
		t.Fatal(err)
	}
	if s.Has("k") {
		t.Fatal("key still present after delete")
	}
	if err := s.Delete(context.Background(), "k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("double delete should report not found")
	}
}

func TestUsedTracking(t *testing.T) {
	s := newMem(t, 0)
	s.Put(context.Background(), "a", make([]byte, 100))
	s.Put(context.Background(), "b", make([]byte, 50))
	if s.Used() != 150 {
		t.Fatalf("Used = %d", s.Used())
	}
	s.Put(context.Background(), "a", make([]byte, 10)) // overwrite shrinks
	if s.Used() != 60 {
		t.Fatalf("Used after overwrite = %d", s.Used())
	}
	s.Delete(context.Background(), "b")
	if s.Used() != 10 {
		t.Fatalf("Used after delete = %d", s.Used())
	}
}

func TestCapacityRejectWithoutEviction(t *testing.T) {
	s, err := New(Config{
		Name: "disk", Class: cost.ClassEBSSSD, Capacity: 100,
	}, fastClock())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(context.Background(), "a", make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(context.Background(), "b", make([]byte, 30)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-capacity put: err = %v", err)
	}
	// Overwriting the same key within capacity succeeds.
	if err := s.Put(context.Background(), "a", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEviction(t *testing.T) {
	clk := clock.NewSim(time.Time{})
	s, err := New(Config{
		Name: "mem", Class: cost.ClassMemory, Capacity: 100,
		Profile: LatencyProfile{}, Volatile: true, EvictLRU: true,
	}, clk)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(context.Background(), "old", make([]byte, 50))
	clk.Advance(time.Second)
	s.Put(context.Background(), "new", make([]byte, 50))
	clk.Advance(time.Second)
	// Touch "old" so "new" becomes LRU.
	if _, err := s.Get(context.Background(), "old"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if err := s.Put(context.Background(), "incoming", make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if s.Has("new") {
		t.Fatal("LRU entry should have been evicted")
	}
	if !s.Has("old") || !s.Has("incoming") {
		t.Fatal("wrong entries evicted")
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("eviction not counted")
	}
}

func TestEvictionCannotFreeEnough(t *testing.T) {
	s, err := New(Config{
		Name: "mem", Class: cost.ClassMemory, Capacity: 100, EvictLRU: true,
	}, fastClock())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(context.Background(), "huge", make([]byte, 200)); !errors.Is(err, ErrCapacity) {
		t.Fatalf("impossible put err = %v", err)
	}
}

func TestGrow(t *testing.T) {
	s, err := New(Config{Name: "d", Class: cost.ClassEBSSSD, Capacity: 100}, fastClock())
	if err != nil {
		t.Fatal(err)
	}
	s.Put(context.Background(), "a", make([]byte, 90))
	if err := s.Put(context.Background(), "b", make([]byte, 50)); !errors.Is(err, ErrCapacity) {
		t.Fatal("should be full")
	}
	s.Grow(100)
	if s.Capacity() != 200 {
		t.Fatalf("Capacity after grow = %d", s.Capacity())
	}
	if err := s.Put(context.Background(), "b", make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
}

func TestFillFraction(t *testing.T) {
	s, _ := New(Config{Name: "d", Class: cost.ClassEBSSSD, Capacity: 200}, fastClock())
	s.Put(context.Background(), "a", make([]byte, 100))
	if got := s.FillFraction(); got != 0.5 {
		t.Fatalf("FillFraction = %v", got)
	}
	u := newMem(t, 0)
	u.Put(context.Background(), "a", make([]byte, 100))
	if u.FillFraction() != 0 {
		t.Fatal("unlimited tier should report 0 fill")
	}
}

func TestStatsCounting(t *testing.T) {
	s := newMem(t, 0)
	s.Put(context.Background(), "k", make([]byte, 10))
	s.Get(context.Background(), "k")
	s.Get(context.Background(), "k")
	s.Delete(context.Background(), "k")
	st := s.Stats()
	if st.Puts != 1 || st.Gets != 2 || st.Deletes != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.BytesIn != 10 || st.BytesOut != 20 {
		t.Fatalf("byte counts = %+v", st)
	}
}

func TestVolatileCrash(t *testing.T) {
	mem := newMem(t, 0)
	mem.Put(context.Background(), "k", []byte("v"))
	mem.Crash()
	if mem.Has("k") {
		t.Fatal("volatile tier kept data across crash")
	}
	disk, _ := Standard("t2", "ebs-ssd", 0, fastClock())
	disk.Put(context.Background(), "k", []byte("v"))
	disk.Crash()
	if !disk.Has("k") {
		t.Fatal("durable tier lost data on crash")
	}
}

func TestStandardKinds(t *testing.T) {
	kinds := []struct {
		kind  string
		class cost.TierClass
	}{
		{"memory", cost.ClassMemory},
		{"ebs-ssd", cost.ClassEBSSSD},
		{"ebs-ssd-cached", cost.ClassEBSSSD},
		{"ebs-hdd", cost.ClassEBSHDD},
		{"s3", cost.ClassS3},
		{"s3-ia", cost.ClassS3IA},
		{"glacier", cost.ClassGlacier},
	}
	for _, k := range kinds {
		s, err := Standard("t", k.kind, 0, fastClock())
		if err != nil {
			t.Fatalf("Standard(%s): %v", k.kind, err)
		}
		if s.Class() != k.class {
			t.Fatalf("%s class = %s", k.kind, s.Class())
		}
	}
	if _, err := Standard("t", "tape", 0, fastClock()); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Class: cost.ClassS3}, fastClock()); err == nil {
		t.Fatal("missing name should error")
	}
	if _, err := New(Config{Name: "x", Class: "bogus"}, fastClock()); err == nil {
		t.Fatal("unknown class should error")
	}
	if _, err := New(Config{Name: "x", Class: cost.ClassS3}, nil); err == nil {
		t.Fatal("nil clock should error")
	}
}

// Figure 9's ordering: for a 4KB op, modelled latency must be strictly
// ordered memory < SSD < HDD < S3 < S3-IA, and the cached-EBS profile must
// be under 1ms.
func TestFig9LatencyOrdering(t *testing.T) {
	const size = 4096
	read := func(p LatencyProfile) time.Duration { return p.readTime(size) }
	seq := []LatencyProfile{MemoryProfile, EBSSSDProfile, EBSHDDProfile, S3Profile, S3IAProfile}
	for i := 1; i < len(seq); i++ {
		if read(seq[i-1]) >= read(seq[i]) {
			t.Fatalf("profile %d read time %v not < profile %d time %v",
				i-1, read(seq[i-1]), i, read(seq[i]))
		}
	}
	if read(EBSSSDCachedProfile) >= time.Millisecond {
		t.Fatalf("cached EBS read = %v, want <1ms", read(EBSSSDCachedProfile))
	}
	if read(GlacierProfile) < time.Hour {
		t.Fatal("glacier retrieval should be hours")
	}
}

func TestAccountantCharges(t *testing.T) {
	acct := cost.NewAccountant()
	s, err := New(Config{
		Name: "s3", Class: cost.ClassS3, Accountant: acct,
	}, fastClock())
	if err != nil {
		t.Fatal(err)
	}
	s.Put(context.Background(), "k", []byte("v"))
	s.Get(context.Background(), "k")
	rows := acct.ByClass()
	if len(rows) != 1 || rows[0].PutOps != 1 || rows[0].GetOps != 1 {
		t.Fatalf("accounting rows = %+v", rows)
	}
}

func TestIOPSCapSpacing(t *testing.T) {
	// 100 IOPS cap: 10ms between admissions. Using a sim clock and
	// sequential ops, the second op must wait ~10ms of sim time.
	clk := clock.NewSim(time.Time{})
	s, err := New(Config{
		Name: "disk", Class: cost.ClassEBSHDD,
		Profile: LatencyProfile{IOPSCap: 100},
	}, clk)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan time.Time, 2)
	go func() {
		s.Put(context.Background(), "a", nil) // admitted at t=0, no wait, zero service time
		done <- clk.Now()
		s.Put(context.Background(), "b", nil) // admitted at t=10ms
		done <- clk.Now()
	}()
	first := <-done
	if first != clk.Now() && clk.Since(first) != 0 {
		t.Fatalf("first op should complete immediately")
	}
	// Second op is blocked until we advance 10ms.
	waitForWaiters(t, clk, 1)
	clk.Advance(10 * time.Millisecond)
	second := <-done
	if got := second.Sub(first); got != 10*time.Millisecond {
		t.Fatalf("spacing = %v, want 10ms", got)
	}
}

func TestDataIsolation(t *testing.T) {
	s := newMem(t, 0)
	buf := []byte("original")
	s.Put(context.Background(), "k", buf)
	buf[0] = 'X'
	got, _ := s.Get(context.Background(), "k")
	if string(got) != "original" {
		t.Fatal("tier aliased caller buffer")
	}
	got[0] = 'Y'
	got2, _ := s.Get(context.Background(), "k")
	if string(got2) != "original" {
		t.Fatal("tier returned aliased buffer")
	}
}

func TestKeysSorted(t *testing.T) {
	s := newMem(t, 0)
	s.Put(context.Background(), "b", nil)
	s.Put(context.Background(), "a", nil)
	ks := s.Keys()
	if len(ks) != 2 || ks[0] != "a" {
		t.Fatalf("Keys = %v", ks)
	}
}

func TestConcurrentOps(t *testing.T) {
	s := newMem(t, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				key := fmt.Sprintf("k%d", j%10)
				s.Put(context.Background(), key, []byte{byte(i)})
				s.Get(context.Background(), key)
				s.Has(key)
			}
		}(i)
	}
	wg.Wait()
}

func waitForWaiters(t *testing.T, s *clock.Sim, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.Waiters() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d clock waiters", n)
		}
		time.Sleep(time.Millisecond)
	}
}
